// Lossy, bounded-delay message transport for simulation experiments.
//
// Matches the channel assumptions of the protocol: a message is either
// lost or delivered within a bounded delay; delivery order between
// distinct messages is not guaranteed. Per-link loss probability and
// delay range are configurable, and faults (link down, node crash) can
// be injected at runtime.
//
// Beyond the baseline i.i.d. loss model the network supports the richer
// fault models the chaos layer (src/chaos) drives: Gilbert–Elliott
// bursty loss (a two-state Markov chain per directed link), message
// duplication, and out-of-spec delay injection. Every send is stamped
// with a monotonically increasing message id which is handed to the
// receiver, so sends and deliveries are separately identifiable events;
// an optional channel-event observer sees every send/delivery/loss with
// that id (the raw material for runtime requirement monitors).
//
// Determinism: features draw from the simulator RNG only when enabled
// (burst state only advances when p_enter > 0, duplication and payload
// corruption only roll when their probabilities are > 0), so
// default-configured runs consume the exact same random stream as
// before these models existed.
//
// Hot-path state is dense: handlers and per-link newest-delivered ids
// live in vectors indexed by node id, node isolation is a bitset behind
// an any-isolated flag, and the rarely-touched fault state (links down,
// burst chains, per-link overrides) hides behind empty-checks — a
// healthy send touches no associative container at all.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <type_traits>
#include <vector>

#include "sim/simulator.hpp"
#include "util/dense_bitset.hpp"

namespace ahb::sim {

struct NetworkStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;      ///< dropped by random loss (incl. burst loss)
  std::uint64_t blocked = 0;   ///< dropped because the link was down
  std::uint64_t duplicated = 0;         ///< extra copies created
  std::uint64_t reordered = 0;          ///< deliveries that overtook a later id
  std::uint64_t out_of_spec_delay = 0;  ///< sampled delays above the spec bound
  std::uint64_t corrupted = 0;  ///< payloads bit-flipped in flight
  std::uint64_t rejected = 0;   ///< deliveries the receiver refused to parse
};

/// Gilbert–Elliott two-state loss model of a directed link: each send
/// first advances the good/bad Markov state, then applies the bad-state
/// loss probability while in a burst (the i.i.d. `loss_probability`
/// still applies in the good state). Disabled while p_enter == 0.
struct BurstParams {
  double p_enter = 0.0;        ///< good -> bad transition probability per send
  double p_exit = 1.0;         ///< bad -> good transition probability per send
  double loss = 1.0;           ///< loss probability while in the bad state
};

/// One observable channel-level event, stamped with the message id its
/// send was assigned. `delay` is meaningful for Delivered only.
/// Corrupted fires at send time when the link flips a payload bit (the
/// message still travels); Rejected fires at delivery time when the
/// receiver's wire-image validation refuses the payload.
struct ChannelEvent {
  enum class Kind { Sent, Delivered, Lost, Blocked, Duplicated, Corrupted,
                    Rejected };
  Kind kind{};
  int from = 0;
  int to = 0;
  std::uint64_t id = 0;
  Time at = 0;
  Time delay = 0;
};

/// Flips bit `bit` of the object representation of `value`. Addressed
/// byte-first so both heartbeat engines corrupt identically regardless
/// of the payload's integer layout.
template <typename T>
void corrupt_bit(T& value, std::uint64_t bit) {
  static_assert(std::is_trivially_copyable_v<T>);
  auto* bytes = reinterpret_cast<unsigned char*>(&value);
  bytes[bit >> 3] ^= static_cast<unsigned char>(1u << (bit & 7));
}

/// Parameters of a directed link. Shared across Network instantiations
/// (it is payload-independent), so hosts can configure a
/// Network<WireMessage> and a Network<Message> with the same struct.
struct LinkParams {
  double loss_probability = 0.0;
  Time min_delay = 0;
  Time max_delay = 1;  ///< inclusive; one-way delay bound
  BurstParams burst;
  double duplicate_probability = 0.0;
  double corrupt_probability = 0.0;  ///< per-send payload bit-flip chance
};

template <typename MessageT>
class Network {
 public:
  /// Message handler with the sender and the send-assigned message id
  /// (a duplicated delivery repeats the original id).
  using Handler = std::function<void(int from, const MessageT&, std::uint64_t id)>;
  /// Id-less handler kept for hosts that do not track message identity.
  using SimpleHandler = std::function<void(int from, const MessageT&)>;
  using Observer = std::function<void(const ChannelEvent&)>;

  using LinkParams = sim::LinkParams;

  explicit Network(Simulator& sim, LinkParams defaults = {})
      : sim_(&sim), defaults_(defaults) {}

  /// Registers the message handler of node `id`.
  void attach(int id, Handler handler) {
    AHB_EXPECTS(handler != nullptr);
    AHB_EXPECTS(id >= 0);
    if (static_cast<std::size_t>(id) >= handlers_.size()) {
      handlers_.resize(static_cast<std::size_t>(id) + 1);
    }
    handlers_[static_cast<std::size_t>(id)] = std::move(handler);
  }
  void attach(int id, SimpleHandler handler) {
    AHB_EXPECTS(handler != nullptr);
    attach(id, Handler{[h = std::move(handler)](
                           int from, const MessageT& m, std::uint64_t) {
      h(from, m);
    }});
  }

  /// Overrides parameters for the directed link from -> to.
  void set_link(int from, int to, LinkParams params) {
    links_[{from, to}] = params;
  }

  /// Parameters a send on from -> to would use right now.
  LinkParams link_params(int from, int to) const { return link(from, to); }

  /// Default parameters of links without an override; mutable at
  /// runtime (affects messages sent from now on, never in-flight ones).
  LinkParams& default_params() { return defaults_; }

  /// Takes the directed link down (messages silently dropped) or up.
  void set_link_up(int from, int to, bool up) {
    const std::uint64_t key = link_key(from, to);
    const auto it = std::lower_bound(down_.begin(), down_.end(), key);
    if (up) {
      if (it != down_.end() && *it == key) down_.erase(it);
    } else if (it == down_.end() || *it != key) {
      down_.insert(it, key);
    }
  }

  /// Disconnects a node entirely (crash): all its incident messages are
  /// dropped from now on.
  void isolate(int id) {
    AHB_EXPECTS(id >= 0);
    if (static_cast<std::size_t>(id) >= isolated_.size()) {
      isolated_.resize(static_cast<std::size_t>(id) + 1);
    }
    isolated_.set(static_cast<std::size_t>(id));
    any_isolated_ = true;
  }

  /// One-way delay bound of the channel specification; sampled delays
  /// above it count into NetworkStats::out_of_spec_delay (chaos runs
  /// use the counter to prove a run exercised out-of-spec injection).
  /// Negative disables the classification.
  void set_spec_max_delay(Time bound) { spec_max_delay_ = bound; }

  /// Observer over every channel-level event (see ChannelEvent).
  void on_channel_event(Observer observer) { observer_ = std::move(observer); }

  /// Sends and returns the message id assigned to this send.
  std::uint64_t send(int from, int to, MessageT message) {
    const std::uint64_t id = next_id_++;
    ++stats_.sent;
    notify(ChannelEvent::Kind::Sent, from, to, id, 0);
    if (is_isolated(from) || is_isolated(to) || link_down(from, to)) {
      ++stats_.blocked;
      notify(ChannelEvent::Kind::Blocked, from, to, id, 0);
      return id;
    }
    const LinkParams& params = link(from, to);
    double loss_probability = params.loss_probability;
    if (params.burst.p_enter > 0) {
      bool& bursting = burst_state(from, to);
      bursting = bursting ? !sim_->rng().chance(params.burst.p_exit)
                          : sim_->rng().chance(params.burst.p_enter);
      if (bursting) loss_probability = std::max(loss_probability, params.burst.loss);
    }
    if (sim_->rng().chance(loss_probability)) {
      ++stats_.lost;
      notify(ChannelEvent::Kind::Lost, from, to, id, 0);
      return id;
    }
    if (params.corrupt_probability > 0 &&
        sim_->rng().chance(params.corrupt_probability)) {
      corrupt_bit(message,
                  sim_->rng().below(sizeof(MessageT) * 8));
      ++stats_.corrupted;
      notify(ChannelEvent::Kind::Corrupted, from, to, id, 0);
    }
    schedule_delivery(from, to, id, message, sample_delay(params));
    if (params.duplicate_probability > 0 &&
        sim_->rng().chance(params.duplicate_probability)) {
      ++stats_.duplicated;
      notify(ChannelEvent::Kind::Duplicated, from, to, id, 0);
      schedule_delivery(from, to, id, message, sample_delay(params));
    }
    return id;
  }

  /// The receiver refused to parse a delivered payload (wire-image
  /// validation); hosts report it here so the rejection shows up next
  /// to the corruption counter it answers.
  void count_rejection() { ++stats_.rejected; }

  const NetworkStats& stats() const { return stats_; }

 private:
  struct LinkKey {
    int from;
    int to;
    friend auto operator<=>(const LinkKey&, const LinkKey&) = default;
  };

  Time sample_delay(const LinkParams& params) {
    const Time delay =
        params.min_delay +
        static_cast<Time>(sim_->rng().below(
            static_cast<std::uint64_t>(params.max_delay - params.min_delay) +
            1));
    if (spec_max_delay_ >= 0 && delay > spec_max_delay_) {
      ++stats_.out_of_spec_delay;
    }
    return delay;
  }

  void schedule_delivery(int from, int to, std::uint64_t id,
                         const MessageT& message, Time delay) {
    sim_->after(delay, [this, from, to, id, delay, msg = message]() {
      if (is_isolated(to)) {
        ++stats_.blocked;
        notify(ChannelEvent::Kind::Blocked, from, to, id, delay);
        return;
      }
      if (static_cast<std::size_t>(to) >= handlers_.size() ||
          !handlers_[static_cast<std::size_t>(to)]) {
        return;  // crashed nodes receive silently
      }
      ++stats_.delivered;
      std::uint64_t& newest = newest_delivered(from, to);
      if (id < newest) {
        ++stats_.reordered;
      } else {
        newest = id;
      }
      notify(ChannelEvent::Kind::Delivered, from, to, id, delay);
      handlers_[static_cast<std::size_t>(to)](from, msg, id);
    });
  }

  void notify(ChannelEvent::Kind kind, int from, int to, std::uint64_t id,
              Time delay) {
    if (observer_) {
      observer_(ChannelEvent{kind, from, to, id, sim_->now(), delay});
    }
  }

  const LinkParams& link(int from, int to) const {
    if (links_.empty()) return defaults_;  // hot path: no overrides
    const auto it = links_.find({from, to});
    return it == links_.end() ? defaults_ : it->second;
  }

  bool is_isolated(int id) const {
    return any_isolated_ && id >= 0 &&
           static_cast<std::size_t>(id) < isolated_.size() &&
           isolated_.test(static_cast<std::size_t>(id));
  }

  /// Directed link as one sortable key (nodes are ids >= 0 in practice;
  /// the cast keeps negatives distinct too).
  static std::uint64_t link_key(int from, int to) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(from))
            << 32) |
           static_cast<std::uint32_t>(to);
  }

  bool link_down(int from, int to) const {
    if (down_.empty()) return false;  // hot path: no injected faults
    return std::binary_search(down_.begin(), down_.end(),
                              link_key(from, to));
  }

  /// Burst chains exist only on links the chaos layer configured, so a
  /// small find-or-insert vector beats a map without making the
  /// default path pay for it (the caller already checked p_enter > 0).
  bool& burst_state(int from, int to) {
    const std::uint64_t key = link_key(from, to);
    const auto it = std::lower_bound(
        burst_state_.begin(), burst_state_.end(), key,
        [](const auto& entry, std::uint64_t k) { return entry.first < k; });
    if (it != burst_state_.end() && it->first == key) return it->second;
    return burst_state_.insert(it, {key, false})->second;
  }

  /// Newest-delivered id per directed link, dense by [to][from]: the
  /// reordering counter's state is touched on every delivery.
  std::uint64_t& newest_delivered(int from, int to) {
    if (static_cast<std::size_t>(to) >= newest_delivered_.size()) {
      newest_delivered_.resize(static_cast<std::size_t>(to) + 1);
    }
    auto& by_from = newest_delivered_[static_cast<std::size_t>(to)];
    if (static_cast<std::size_t>(from) >= by_from.size()) {
      by_from.resize(static_cast<std::size_t>(from) + 1, 0);
    }
    return by_from[static_cast<std::size_t>(from)];
  }

  Simulator* sim_;
  LinkParams defaults_;
  std::map<LinkKey, LinkParams> links_;
  std::vector<std::uint64_t> down_;  ///< sorted link_key()s
  std::vector<Handler> handlers_;
  DenseBitset isolated_;
  bool any_isolated_ = false;
  std::vector<std::pair<std::uint64_t, bool>> burst_state_;
  std::vector<std::vector<std::uint64_t>> newest_delivered_;
  std::uint64_t next_id_ = 1;
  Time spec_max_delay_ = -1;
  Observer observer_;
  NetworkStats stats_;
};

}  // namespace ahb::sim
