#include "sim/simulator.hpp"

#include <algorithm>

namespace ahb::sim {

Simulator::EventId Simulator::at(Time when, std::function<void()> fn,
                                 int priority) {
  AHB_EXPECTS(when >= now_);
  AHB_EXPECTS(fn != nullptr);
  const EventId id = next_id_++;
  queue_.push(Event{when, priority, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEvent) return;
  cancelled_.push_back(id);
  ++cancelled_pending_;
}

bool Simulator::pop_one(Time horizon, Event& out) {
  while (!queue_.empty()) {
    if (queue_.top().when > horizon) return false;
    // const_cast is confined here: priority_queue::top() is const but we
    // are about to pop; moving the closure out avoids a copy.
    out = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = std::find(cancelled_.begin(), cancelled_.end(), out.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_pending_;
      continue;
    }
    return true;
  }
  return false;
}

std::size_t Simulator::run_until(Time horizon) {
  std::size_t count = 0;
  Event event;
  while (pop_one(horizon, event)) {
    now_ = event.when;
    ++executed_;
    ++count;
    event.fn();
  }
  now_ = std::max(now_, horizon);
  return count;
}

bool Simulator::step(Time horizon) {
  Event event;
  if (!pop_one(horizon, event)) return false;
  now_ = event.when;
  ++executed_;
  event.fn();
  return true;
}

}  // namespace ahb::sim
