// Hierarchical timer wheel: O(1) arm/cancel/rearm for the
// cluster-scale heartbeat engine.
//
// The small-n path (sim::Simulator) keeps every pending event in one
// binary heap of heap-allocated closures; arming a deadline is O(log n)
// and cancel+rearm — which the heartbeat engines do on *every* message
// delivery — churns the heap. At hundreds of thousands of monitored
// participants that dominates the run. This wheel stores plain payload
// records in pooled, index-linked slot lists (no per-event allocation
// after warm-up) bucketed by expiry tick across kLevels levels of 64
// slots each: level k spans 64^(k+1) ticks, so any deadline within
// ~6.9e10 ticks of now is an O(1) list insert, and cancellation unlinks
// in O(1) via a generation-checked handle.
//
// Determinism contract (matches sim::Simulator exactly): entries due at
// the same tick fire ordered by (priority, arm-sequence) — deliveries
// at priority 0 outrun timers at priority 1, ties fall back to FIFO arm
// order. The cluster-scale engine relies on this to reproduce the
// legacy engine's event interleavings bit-for-bit; the property test in
// tests/sim_timer_wheel_test.cpp pins the order against a sorted-set
// oracle.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "util/contracts.hpp"

namespace ahb::sim {

template <typename Payload>
class TimerWheel {
 public:
  using Time = std::int64_t;

  /// Generation-checked reference to a pending entry. Default-constructed
  /// handles are invalid; cancel() of an invalid/expired handle is a
  /// no-op, like Simulator::cancel.
  struct Handle {
    std::uint32_t index = kNullIndex;
    std::uint32_t generation = 0;
    bool valid() const { return index != kNullIndex; }
  };

  /// One expired entry, in (when, priority, seq) firing order.
  struct Expired {
    Time when = 0;
    int priority = 0;
    std::uint64_t seq = 0;
    Payload payload{};
  };

  explicit TimerWheel(Time start = 0) : now_(start) {
    for (auto& level : heads_) level.fill_null();
  }

  Time now() const { return now_; }
  std::size_t pending() const { return pending_; }

  /// Arms an entry at absolute tick `when` (>= now(), and within the
  /// wheel span of ~64^kLevels ticks — callers never arm the kNever
  /// sentinel). Priority is 0 (deliveries) or 1 (timers) — the two
  /// lanes the simulator's receive-priority tiebreak needs. O(1).
  Handle arm(Time when, int priority, const Payload& payload) {
    AHB_EXPECTS(when >= now_);
    AHB_EXPECTS(when - now_ < kSpanTicks);
    AHB_EXPECTS(priority == 0 || priority == 1);
    const std::uint32_t idx = alloc();
    Node& node = pool_[idx];
    node.when = when;
    node.priority = priority;
    node.seq = next_seq_++;
    node.payload = payload;
    node.live = true;
    ++pending_;
    place(idx);
    return Handle{idx, node.generation};
  }

  /// Cancels a pending entry; returns true if it was still pending.
  /// O(1): wheel-resident entries unlink immediately, entries already
  /// staged in the current-tick ready heap are discarded lazily.
  bool cancel(Handle h) {
    if (!h.valid() || h.index >= pool_.size()) return false;
    Node& node = pool_[h.index];
    if (node.generation != h.generation || !node.live) return false;
    node.live = false;
    --pending_;
    if (node.location == Location::Wheel) {
      unlink(h.index);
      free_node(h.index);
    }
    // Location::Ready: the ready heap drops it when popped.
    return true;
  }

  /// Pops the next live entry with when <= horizon, advancing now() to
  /// its tick. Entries fire in exact (when, priority, seq) order.
  bool pop(Time horizon, Expired& out) {
    while (true) {
      while (!ready_empty()) {
        const std::uint32_t idx = pop_ready();
        Node& node = pool_[idx];
        if (!node.live) {
          free_node(idx);
          continue;
        }
        out.when = node.when;
        out.priority = node.priority;
        out.seq = node.seq;
        out.payload = node.payload;
        node.live = false;
        --pending_;
        free_node(idx);
        return true;
      }
      if (pending_ == 0) return false;
      const Time next = next_event_tick();
      if (next > horizon) return false;
      advance_to_tick(next);
    }
  }

  /// Moves now() forward to `t` (>= now()) without firing anything.
  /// Only legal when no pending entry is due at or before `t`; used for
  /// run_until(horizon) semantics after the queue drains. Walks the
  /// cascade boundaries up to `t` (so entries re-file exactly as pop()
  /// would have re-filed them) and then jumps: once no boundary with
  /// work remains at or before `t`, every pending entry provably sits
  /// in a slot whose scan candidate stays ahead of `t`.
  void advance_to(Time t) {
    if (t <= now_) return;
    AHB_EXPECTS(ready_empty());
    while (pending_ != 0) {
      const Time next = next_event_tick();
      if (next > t) break;
      advance_to_tick(next);
      AHB_EXPECTS(ready_empty());  // an entry was due at or before t
    }
    now_ = t;
  }

 private:
  static constexpr std::uint32_t kNullIndex = 0xffffffffu;
  static constexpr int kLevelBits = 6;
  static constexpr int kSlots = 64;
  static constexpr int kLevels = 6;
  /// Total tick span the wheel can hold: 64^kLevels.
  static constexpr Time kSpanTicks = Time{1} << (kLevelBits * kLevels);

  enum class Location : std::uint8_t { Free, Wheel, Ready };

  struct Node {
    Time when = 0;
    int priority = 0;
    std::uint64_t seq = 0;
    Payload payload{};
    std::uint32_t generation = 0;
    std::uint32_t prev = kNullIndex;
    std::uint32_t next = kNullIndex;
    std::uint8_t level = 0;
    std::uint8_t slot = 0;
    Location location = Location::Free;
    bool live = false;
  };

  struct LevelHeads {
    std::uint32_t head[kSlots];
    void fill_null() {
      for (auto& h : head) h = kNullIndex;
    }
  };

  static constexpr Time level_span(int k) {
    return Time{1} << (kLevelBits * k);  // slot width of level k
  }

  std::uint32_t alloc() {
    if (!free_list_.empty()) {
      const std::uint32_t idx = free_list_.back();
      free_list_.pop_back();
      return idx;
    }
    pool_.push_back(Node{});
    return static_cast<std::uint32_t>(pool_.size() - 1);
  }

  void free_node(std::uint32_t idx) {
    Node& node = pool_[idx];
    ++node.generation;  // invalidates outstanding handles
    node.location = Location::Free;
    node.live = false;
    free_list_.push_back(idx);
  }

  /// Files a node by its delta from now: level k holds deltas in
  /// [64^k, 64^(k+1)), slot index is the node's absolute tick sliced at
  /// that level. Entries due exactly now go straight to the ready heap.
  void place(std::uint32_t idx) {
    Node& node = pool_[idx];
    const Time delta = node.when - now_;
    if (delta == 0) {
      push_ready(idx);
      return;
    }
    int level = 0;
    while (delta >= level_span(level + 1)) ++level;
    const int slot =
        static_cast<int>((node.when >> (kLevelBits * level)) & (kSlots - 1));
    node.level = static_cast<std::uint8_t>(level);
    node.slot = static_cast<std::uint8_t>(slot);
    node.location = Location::Wheel;
    node.prev = kNullIndex;
    node.next = heads_[level].head[slot];
    if (node.next != kNullIndex) pool_[node.next].prev = idx;
    heads_[level].head[slot] = idx;
    occupied_[level] |= std::uint64_t{1} << slot;
  }

  void unlink(std::uint32_t idx) {
    Node& node = pool_[idx];
    if (node.prev != kNullIndex) {
      pool_[node.prev].next = node.next;
    } else {
      heads_[node.level].head[node.slot] = node.next;
    }
    if (node.next != kNullIndex) pool_[node.next].prev = node.prev;
    if (heads_[node.level].head[node.slot] == kNullIndex) {
      occupied_[node.level] &= ~(std::uint64_t{1} << node.slot);
    }
    node.prev = node.next = kNullIndex;
  }

  // Ready stage: entries due at the current tick, fired in
  // (priority, seq) order. Two FIFO lanes — one per priority — hold
  // (seq, idx) pairs with the sort key inline, so draining never
  // dereferences the pool for comparisons (at 100k nodes the pooled
  // records span megabytes and a comparison heap thrashes the cache).
  // A slot's entries are sorted once on collection; same-tick arms
  // during processing carry fresh monotone seqs, so appending keeps
  // each lane sorted for free.
  struct ReadyEntry {
    std::uint64_t seq;
    std::uint32_t idx;
  };

  bool ready_empty() const {
    return lane_head_[0] == lanes_[0].size() &&
           lane_head_[1] == lanes_[1].size();
  }

  void push_ready(std::uint32_t idx) {
    Node& node = pool_[idx];
    node.location = Location::Ready;
    lanes_[node.priority].push_back({node.seq, idx});
  }

  std::uint32_t pop_ready() {
    // Lane 0 always outranks lane 1 at the same tick; a lane-0 arm that
    // lands while lane 1 is draining simply fires next, exactly like
    // the legacy binary heap.
    const int lane = lane_head_[0] < lanes_[0].size() ? 0 : 1;
    const std::uint32_t idx = lanes_[lane][lane_head_[lane]++].idx;
    if (ready_empty()) {
      lanes_[0].clear();
      lanes_[1].clear();
      lane_head_[0] = lane_head_[1] = 0;
    }
    return idx;
  }

  /// The next tick that needs attention: per level, the start of the
  /// first occupied slot still ahead in the current window, or — since
  /// the slot ring recycles — the start of the first occupied slot in
  /// the *next* window when only slots at or behind the current index
  /// hold work (an entry with delta just under the level's span wraps
  /// to a slot index <= the current one, including the current slot
  /// itself). Returned ticks are cascade boundaries, not necessarily
  /// due entries: advancing there either stages level-0 work or
  /// re-files a coarser slot, and the scan repeats.
  Time next_event_tick() const {
    Time best = -1;
    for (int k = 0; k < kLevels; ++k) {
      if (occupied_[k] == 0) continue;
      const int cur =
          static_cast<int>((now_ >> (kLevelBits * k)) & (kSlots - 1));
      const Time window = now_ & ~(level_span(k + 1) - 1);
      const std::uint64_t ahead =
          cur == kSlots - 1
              ? 0
              : occupied_[k] & (~std::uint64_t{0} << (cur + 1));
      Time cand;
      if (ahead != 0) {
        cand = window +
               static_cast<Time>(std::countr_zero(ahead)) * level_span(k);
      } else {
        // All occupied slots are at or behind the current index: their
        // entries fire in the next cycle of this level's ring.
        cand = window + level_span(k + 1) +
               static_cast<Time>(std::countr_zero(occupied_[k])) *
                   level_span(k);
      }
      if (best < 0 || cand < best) best = cand;
    }
    AHB_EXPECTS(best >= 0 && "next_event_tick with nothing pending");
    return best;
  }

  void cascade(int level, int slot) {
    std::uint32_t idx = heads_[level].head[slot];
    heads_[level].head[slot] = kNullIndex;
    occupied_[level] &= ~(std::uint64_t{1} << slot);
    while (idx != kNullIndex) {
      const std::uint32_t next = pool_[idx].next;
      pool_[idx].prev = pool_[idx].next = kNullIndex;
      place(idx);  // delta is now < 64^level: re-files lower (or ready)
      idx = next;
    }
  }

  /// Jumps now() to tick `t`, cascading every level whose slot boundary
  /// `t` starts (highest level first, so cascades can deposit into the
  /// lower-level slots cascaded right after) and staging the entries of
  /// the new level-0 slot into the ready heap.
  void advance_to_tick(Time t) {
    now_ = t;
    for (int k = kLevels - 1; k >= 1; --k) {
      if ((t & (level_span(k) - 1)) == 0) {
        cascade(k, static_cast<int>((t >> (kLevelBits * k)) & (kSlots - 1)));
      }
    }
    collect_current_slot();
  }

  void collect_current_slot() {
    const int slot = static_cast<int>(now_ & (kSlots - 1));
    std::uint32_t idx = heads_[0].head[slot];
    heads_[0].head[slot] = kNullIndex;
    occupied_[0] &= ~(std::uint64_t{1} << slot);
    while (idx != kNullIndex) {
      const std::uint32_t next = pool_[idx].next;
      pool_[idx].prev = pool_[idx].next = kNullIndex;
      AHB_EXPECTS(pool_[idx].when == now_);
      push_ready(idx);
      idx = next;
    }
    // Both lanes were empty before this tick (pop() drains fully before
    // advancing), so sorting the whole lane restores (priority, seq)
    // order in one contiguous pass.
    for (auto& lane : lanes_) {
      std::sort(lane.begin(), lane.end(),
                [](const ReadyEntry& a, const ReadyEntry& b) {
                  return a.seq < b.seq;
                });
    }
  }

  Time now_;
  std::uint64_t next_seq_ = 1;
  std::size_t pending_ = 0;
  std::vector<Node> pool_;
  std::vector<std::uint32_t> free_list_;
  std::vector<ReadyEntry> lanes_[2];
  std::size_t lane_head_[2] = {0, 0};
  LevelHeads heads_[kLevels];
  std::uint64_t occupied_[kLevels] = {};
};

}  // namespace ahb::sim
