// Plain (non-accelerated) heartbeat baseline: a sender beating at a
// fixed period and a detector that declares failure after k consecutive
// missed periods. This is the conventional protocol the accelerated
// variants are compared against in the benchmarks: to match the
// accelerated protocol's tolerance to sporadic loss, the plain protocol
// must either beat faster (more overhead) or wait more periods (longer
// detection delay).
#pragma once

#include "hb/types.hpp"

namespace ahb::hb {

class PlainSender {
 public:
  PlainSender(int id, Time period);

  Actions start(Time now);
  Actions on_elapsed(Time now);
  void crash(Time now);

  Status status() const { return status_; }
  Time next_event_time() const;
  Time period() const { return period_; }

 private:
  int id_;
  Time period_;
  Status status_ = Status::Active;
  Time next_beat_ = 0;
  bool started_ = false;
};

class PlainDetector {
 public:
  /// Declares failure after `miss_threshold` periods without any beat.
  PlainDetector(Time period, int miss_threshold);

  void start(Time now);
  Actions on_elapsed(Time now);
  Actions on_message(Time now, const Message& message);

  bool suspected() const { return suspected_; }
  Time suspected_at() const { return suspected_at_; }
  Time next_event_time() const;
  Time timeout() const { return timeout_; }

 private:
  Time timeout_;
  bool started_ = false;
  bool suspected_ = false;
  Time deadline_ = 0;
  Time suspected_at_ = kNever;
};

}  // namespace ahb::hb
