// Participant (process p[i], i > 0) of the accelerated heartbeat
// protocols: echoes the coordinator's beats, inactivates itself when
// beats stop arriving, and — depending on the variant — joins by beating
// every tmin until acknowledged, or leaves gracefully with a false-flag
// beat.
#pragma once

#include "hb/types.hpp"

namespace ahb::hb {

class Participant {
 public:
  /// `starts_joined` is true for the binary/static variants (membership
  /// is a priori) and false for expanding/dynamic (joins by beating).
  Participant(const Config& config, int id, bool starts_joined);

  /// Must be called once; arms the inactivation deadline and, for the
  /// expanding/dynamic variants, schedules the first join beat one join
  /// period after start-up (matching the verified model).
  Actions start(Time now);

  /// Host callback when now >= next_event_time().
  Actions on_elapsed(Time now);

  /// Host callback for every received message (coordinator beats).
  Actions on_message(Time now, const Message& message);

  /// Host-injected voluntary crash.
  void crash(Time now);

  /// Fail-safe stop on detected local-clock corruption: the process
  /// must never act on invalid time arithmetic, so it forces its own
  /// non-voluntary inactivation instead (`now` is the last trusted
  /// local time). Idempotent; a no-op unless Active.
  Actions fence(Time now);

  /// Dynamic variant: leave gracefully at the next beat (the departure
  /// is announced as the reply to the coordinator's next heartbeat).
  void request_leave();

  /// Dynamic variant extension (future work in the source analysis): a
  /// departed participant re-enters the join phase. Only valid while
  /// status() == Status::Left and strictly more than tmin after the
  /// leave was sent (so the leave beat has drained from the network —
  /// rejoining earlier risks the stale leave cancelling the new
  /// registration). Re-enters the join phase; the new incarnation's
  /// first join beat follows one join period later.
  Actions rejoin(Time now);

  Status status() const { return status_; }
  Time next_event_time() const;
  Time inactivated_at() const { return inactivated_at_; }
  /// When the leave beat was sent (kNever unless status() == Left).
  Time left_at() const { return left_at_; }
  bool joined() const { return joined_; }
  int id() const { return id_; }
  const Config& config() const { return config_; }

 private:
  Config config_;
  int id_;
  Status status_ = Status::Active;
  bool joined_ = false;
  bool leave_requested_ = false;
  bool started_ = false;
  Time deadline_ = 0;   ///< absolute inactivation deadline
  Time next_join_ = kNever;
  Time inactivated_at_ = kNever;
  Time left_at_ = kNever;  ///< when the leave beat was sent
};

}  // namespace ahb::hb
