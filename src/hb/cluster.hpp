// Cluster: wires a Coordinator and its Participants onto the
// discrete-event simulator and the lossy network. This is the
// whole-system harness used by the examples, the integration tests and
// the simulation benchmarks: configure timing/loss/seed, inject crashes
// and leaves, run, and inspect statuses and inactivation times.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hb/coordinator.hpp"
#include "hb/participant.hpp"
#include "hb/protocol_event.hpp"
#include "rv/sink_chain.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace ahb::hb {

struct ClusterConfig {
  Config protocol;
  int participants = 1;
  double loss_probability = 0.0;
  /// One-way delay range; defaults keep the round trip within tmin as
  /// the protocol assumes (set from `protocol.tmin` when max_delay < 0).
  sim::Time min_delay = 0;
  sim::Time max_delay = -1;
  std::uint64_t seed = 1;
  /// Process message deliveries before timer expirations at the same
  /// instant (the Section 6.1 correction). Without it, a beat arriving
  /// exactly at a deadline can lose the race against the timeout — the
  /// very anomaly (Figs. 11/12 of the analysis) the fix removes; it is
  /// essential when the tight `fixed_bounds` deadlines are used.
  bool receive_priority = true;
};

/// Per-node message counters (the overhead metric of the benchmarks).
struct NodeStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  /// Starts all processes at the current simulation time.
  void start();

  void run_until(sim::Time horizon);

  // Fault/behaviour injection (scheduled at absolute times).
  void crash_coordinator_at(sim::Time when);
  void crash_participant_at(int id, sim::Time when);
  void leave_at(int id, sim::Time when);
  /// Dynamic variant: re-enter the join phase at `when` (no-op unless
  /// the participant has left by then).
  void rejoin_at(int id, sim::Time when);

  /// Network faults: take a directed link down (messages silently
  /// dropped) or bring it back up. Node 0 is the coordinator.
  void fail_link(int from, int to) { net_.set_link_up(from, to, false); }
  void restore_link(int from, int to) { net_.set_link_up(from, to, true); }

  /// Clock drift: node `id`'s local clock advances `num/den` local time
  /// units per global (simulation) unit from now on. The engines see
  /// local time in every on_message/on_elapsed call and their timers
  /// are armed at the global instant whose local image reaches the
  /// engine deadline — so a slow clock stretches real waiting times and
  /// a fast one shrinks them, exactly like a drifting hardware timer.
  /// Identity (1/1) is the default and leaves behaviour untouched.
  void set_drift(int id, std::int64_t num, std::int64_t den);

  /// Direct access to the transport, for fault injection beyond the
  /// convenience wrappers above (loss/burst/duplication/delay changes).
  /// Node 0 is the coordinator. The network's single channel-event
  /// observer slot is claimed by the cluster itself to feed the sink
  /// chain — observe channel events via on_channel_event or add_sink,
  /// not Network::on_channel_event.
  sim::Network<Message>& network() { return net_; }

  const ClusterConfig& config() const { return config_; }

  /// Registers a runtime-verification sink (not owned; must outlive the
  /// cluster). Install before start() to capture the complete trace;
  /// run_until does not call finish on the sinks — drive
  /// `sinks().finish(horizon)` when the run ends.
  void add_sink(rv::EventSink* sink) { sinks_.add(sink); }
  rv::SinkChain& sinks() { return sinks_; }

  // Legacy lambda observers, kept as a thin adapter over the sink chain
  // (one rv::CallbackSink registered at construction).

  /// Observer called on every non-voluntary inactivation, with the node
  /// id (0 = coordinator) and the time.
  void on_inactivation(std::function<void(int, sim::Time)> cb) {
    legacy_.set_inactivation(std::move(cb));
    sinks_.refresh();
  }

  /// Observer called on every protocol-level event (see ProtocolEvent).
  /// Install before start() to capture the complete trace.
  void on_protocol_event(std::function<void(const ProtocolEvent&)> cb) {
    legacy_.set_protocol(std::move(cb));
    sinks_.refresh();
  }

  /// Observer called on every channel event of the transport.
  void on_channel_event(std::function<void(const sim::ChannelEvent&)> cb) {
    legacy_.set_channel(std::move(cb));
    sinks_.refresh();
  }

  Coordinator& coordinator() { return *coordinator_; }
  const Coordinator& coordinator() const { return *coordinator_; }
  Participant& participant(int id);
  const Participant& participant(int id) const;
  int participant_count() const { return static_cast<int>(parts_.size()); }

  sim::Simulator& simulator() { return sim_; }
  const sim::NetworkStats& network_stats() const { return net_.stats(); }
  const NodeStats& node_stats(int id) const;

  /// True iff every process has stopped participating (crashed, left,
  /// or inactivated).
  bool all_inactive() const;

 private:
  /// Piecewise-linear node clock: local = base_local + (global -
  /// base_global) * num / den. Rebased whenever the rate changes so the
  /// local clock is continuous and monotone.
  struct NodeClock {
    std::int64_t num = 1;
    std::int64_t den = 1;
    sim::Time base_global = 0;
    sim::Time base_local = 0;

    sim::Time local(sim::Time global) const {
      return base_local + (global - base_global) * num / den;
    }
    /// Earliest global instant whose local image is >= `local_when`.
    sim::Time global_for(sim::Time local_when) const {
      if (local_when == kNever) return kNever;
      const sim::Time span = local_when - base_local;
      if (span <= 0) return base_global;
      return base_global + (span * den + num - 1) / num;  // ceil
    }
  };

  void dispatch(int node_id, const Actions& actions);
  void emit(ProtocolEvent::Kind kind, int node, std::uint64_t msg_id = 0,
            std::uint32_t fanout = 0);
  void arm_timer(int node_id);
  Actions node_elapsed(int node_id, sim::Time now);
  sim::Time node_next_event(int node_id) const;
  sim::Time local_now(int node_id) const {
    return clocks_[static_cast<std::size_t>(node_id)].local(sim_.now());
  }

  ClusterConfig config_;
  sim::Simulator sim_;
  sim::Network<Message> net_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Participant>> parts_;
  std::vector<sim::Simulator::EventId> timers_;  // index: node id
  std::vector<NodeStats> node_stats_;
  std::vector<NodeClock> clocks_;  // index: node id
  rv::CallbackSink legacy_;  ///< adapter behind the lambda observer API
  rv::SinkChain sinks_;
  bool started_ = false;
};

}  // namespace ahb::hb
