// Cluster: wires a Coordinator and its Participants onto the
// discrete-event simulator and the lossy network. This is the
// whole-system harness used by the examples, the integration tests and
// the simulation benchmarks: configure timing/loss/seed, inject crashes
// and leaves, run, and inspect statuses and inactivation times.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "hb/coordinator.hpp"
#include "hb/participant.hpp"
#include "hb/protocol_event.hpp"
#include "hb/wire.hpp"
#include "rv/sink_chain.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace ahb::hb {

struct ClusterConfig {
  Config protocol;
  int participants = 1;
  double loss_probability = 0.0;
  /// One-way delay range; defaults keep the round trip within tmin as
  /// the protocol assumes (set from `protocol.tmin` when max_delay < 0).
  sim::Time min_delay = 0;
  sim::Time max_delay = -1;
  std::uint64_t seed = 1;
  /// Process message deliveries before timer expirations at the same
  /// instant (the Section 6.1 correction). Without it, a beat arriving
  /// exactly at a deadline can lose the race against the timeout — the
  /// very anomaly (Figs. 11/12 of the analysis) the fix removes; it is
  /// essential when the tight `fixed_bounds` deadlines are used.
  bool receive_priority = true;
  /// Per-send payload bit-flip probability on every link (the chaos
  /// layer can also arm it per link via network().set_link).
  double corrupt_probability = 0.0;
  /// Receivers parse-or-drop the wire image (hb/wire.hpp). Disabling
  /// this is the mutation canary: corrupted payloads reach the engines.
  bool wire_validation = true;
  /// Half-range rule on node clock reads: an age >= 2^63 between two
  /// reads of the modular hardware clock is invalid and fences the node
  /// (fail-safe non-voluntary inactivation) instead of being acted on.
  /// Disabling it models the historical bug — raw ordered comparison of
  /// absolute register values, which a wrap or backward jump breaks.
  bool clock_guard = true;
};

/// Per-node message counters (the overhead metric of the benchmarks).
struct NodeStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  /// Starts all processes at the current simulation time.
  void start();

  void run_until(sim::Time horizon);

  // Fault/behaviour injection (scheduled at absolute times).
  void crash_coordinator_at(sim::Time when);
  void crash_participant_at(int id, sim::Time when);
  void leave_at(int id, sim::Time when);
  /// Dynamic variant: re-enter the join phase at `when` (no-op unless
  /// the participant has left by then).
  void rejoin_at(int id, sim::Time when);

  /// Network faults: take a directed link down (messages silently
  /// dropped) or bring it back up. Node 0 is the coordinator.
  void fail_link(int from, int to) { net_.set_link_up(from, to, false); }
  void restore_link(int from, int to) { net_.set_link_up(from, to, true); }

  /// Clock drift: node `id`'s local clock advances `num/den` local time
  /// units per global (simulation) unit from now on. The engines see
  /// local time in every on_message/on_elapsed call and their timers
  /// are armed at the global instant whose local image reaches the
  /// engine deadline — so a slow clock stretches real waiting times and
  /// a fast one shrinks them, exactly like a drifting hardware timer.
  /// Identity (1/1) is the default and leaves behaviour untouched.
  void set_drift(int id, std::int64_t num, std::int64_t den);

  /// Clock corruption: at global time `when`, node `id`'s hardware
  /// clock register jumps by `delta` ticks (negative = backwards). The
  /// node observes the jump immediately. Under the half-range rule a
  /// backward jump is an invalid age and fences the node; a forward
  /// jump is indistinguishable from elapsed time, so the node
  /// conservatively times out whatever deadlines the jump crossed.
  void corrupt_clock_at(int id, sim::Time when, std::int64_t delta);

  /// Clock wrap: at global time `when`, node `id`'s hardware clock
  /// register is repositioned `margin` ticks before the 2^64 wrap
  /// point, preserving all pending ages (only the absolute position
  /// moves). With the modular-time idiom (clock_guard on) the
  /// subsequent wrap is unobservable; with the guard off the raw
  /// comparison sees time leap backwards at the crossing.
  void wrap_clock_at(int id, sim::Time when, std::uint64_t margin);

  /// The transport carries validated 8-byte wire images (hb/wire.hpp).
  using Transport = sim::Network<WireMessage>;

  /// Direct access to the transport, for fault injection beyond the
  /// convenience wrappers above (loss/burst/duplication/corruption/
  /// delay changes). Node 0 is the coordinator. The network's single
  /// channel-event observer slot is claimed by the cluster itself to
  /// feed the sink chain — observe channel events via on_channel_event
  /// or add_sink, not Network::on_channel_event.
  Transport& network() { return net_; }

  const ClusterConfig& config() const { return config_; }

  /// Registers a runtime-verification sink (not owned; must outlive the
  /// cluster). Install before start() to capture the complete trace;
  /// run_until does not call finish on the sinks — drive
  /// `sinks().finish(horizon)` when the run ends.
  void add_sink(rv::EventSink* sink) { sinks_.add(sink); }
  /// Deregisters a sink mid-run (between run_until calls), so it can be
  /// destroyed before the cluster without leaving a dangling pointer in
  /// the chain.
  void remove_sink(rv::EventSink* sink) { sinks_.remove(sink); }
  rv::SinkChain& sinks() { return sinks_; }

  // Legacy lambda observers, kept as a thin adapter over the sink chain
  // (one rv::CallbackSink registered at construction).

  /// Observer called on every non-voluntary inactivation, with the node
  /// id (0 = coordinator) and the time.
  void on_inactivation(std::function<void(int, sim::Time)> cb) {
    legacy_.set_inactivation(std::move(cb));
    sinks_.refresh();
  }

  /// Observer called on every protocol-level event (see ProtocolEvent).
  /// Install before start() to capture the complete trace.
  void on_protocol_event(std::function<void(const ProtocolEvent&)> cb) {
    legacy_.set_protocol(std::move(cb));
    sinks_.refresh();
  }

  /// Observer called on every channel event of the transport.
  void on_channel_event(std::function<void(const sim::ChannelEvent&)> cb) {
    legacy_.set_channel(std::move(cb));
    sinks_.refresh();
  }

  Coordinator& coordinator() { return *coordinator_; }
  const Coordinator& coordinator() const { return *coordinator_; }
  Participant& participant(int id);
  const Participant& participant(int id) const;
  int participant_count() const { return static_cast<int>(parts_.size()); }

  sim::Simulator& simulator() { return sim_; }
  const sim::NetworkStats& network_stats() const { return net_.stats(); }
  const NodeStats& node_stats(int id) const;

  /// True iff every process has stopped participating (crashed, left,
  /// or inactivated).
  bool all_inactive() const;

 private:
  /// Node clock, pulse-style: the *hardware* register is a free-running
  /// modular uint64 advancing at rate num/den per global unit, and the
  /// *engine* clock the protocol code sees is reconstructed from it one
  /// age at a time — age(a, b) = (a - b) mod 2^64, valid iff < 2^63
  /// (the half-range rule). Ages telescope, so in normal operation the
  /// reconstruction is exactly the old piecewise-affine local clock;
  /// the difference only shows when chaos jumps or wraps the register.
  /// `base_engine`/`base_global` anchor the affine segment timers are
  /// mapped through; they are rebased on rate changes, clock jumps, and
  /// raw-mode divergence so engine deadlines stay translatable.
  struct NodeClock {
    std::int64_t num = 1;
    std::int64_t den = 1;
    sim::Time base_global = 0;
    std::uint64_t hw_base = 0;    ///< register value at base_global
    std::uint64_t hw_last = 0;    ///< register value at the last read
    sim::Time base_engine = 0;    ///< engine clock at base_global
    sim::Time engine_local = 0;   ///< reconstructed engine clock
    bool fault = false;           ///< latched half-range violation

    std::uint64_t hw(sim::Time global) const {
      return hw_base +
             static_cast<std::uint64_t>((global - base_global) * num / den);
    }
    /// Earliest global instant whose engine-clock image reaches
    /// `local_when` (clamped to kNever when the affine segment cannot
    /// reach it within the representable range).
    sim::Time global_for(sim::Time local_when) const {
      if (local_when == kNever) return kNever;
      const __int128 span =
          static_cast<__int128>(local_when) - base_engine;
      if (span <= 0) return base_global;
      const __int128 global = base_global + (span * den + num - 1) / num;
      return global >= kNever ? kNever : static_cast<sim::Time>(global);
    }
  };

  void dispatch(int node_id, const Actions& actions);
  void emit(ProtocolEvent::Kind kind, int node, std::uint64_t msg_id = 0,
            std::uint32_t fanout = 0);
  void arm_timer(int node_id);
  Actions node_elapsed(int node_id, sim::Time now);
  sim::Time node_next_event(int node_id) const;
  /// Reads node `node_id`'s clock: advances the reconstruction by the
  /// age since the previous read (latching `fault` on a half-range
  /// violation when the guard is on) and returns the engine clock.
  sim::Time advance_clock(int node_id);
  sim::Time local_now(int node_id) { return advance_clock(node_id); }
  /// Parse-or-drop boundary validation of a delivered wire image.
  std::optional<Message> decode_wire(int from, const WireMessage& wire) const;
  /// Counts and reports a boundary rejection of message `id`.
  void reject_wire(int from, int to, std::uint64_t id);
  /// Fail-safe reaction to a latched clock fault: fence the engine.
  void fence_node(int node_id, sim::Time local);

  ClusterConfig config_;
  sim::Simulator sim_;
  Transport net_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Participant>> parts_;
  std::vector<sim::Simulator::EventId> timers_;  // index: node id
  std::vector<NodeStats> node_stats_;
  std::vector<NodeClock> clocks_;  // index: node id
  rv::CallbackSink legacy_;  ///< adapter behind the lambda observer API
  rv::SinkChain sinks_;
  bool started_ = false;
};

}  // namespace ahb::hb
