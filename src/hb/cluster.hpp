// Cluster: wires a Coordinator and its Participants onto the
// discrete-event simulator and the lossy network. This is the
// whole-system harness used by the examples, the integration tests and
// the simulation benchmarks: configure timing/loss/seed, inject crashes
// and leaves, run, and inspect statuses and inactivation times.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "hb/coordinator.hpp"
#include "hb/participant.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace ahb::hb {

struct ClusterConfig {
  Config protocol;
  int participants = 1;
  double loss_probability = 0.0;
  /// One-way delay range; defaults keep the round trip within tmin as
  /// the protocol assumes (set from `protocol.tmin` when max_delay < 0).
  sim::Time min_delay = 0;
  sim::Time max_delay = -1;
  std::uint64_t seed = 1;
  /// Process message deliveries before timer expirations at the same
  /// instant (the Section 6.1 correction). Without it, a beat arriving
  /// exactly at a deadline can lose the race against the timeout — the
  /// very anomaly (Figs. 11/12 of the analysis) the fix removes; it is
  /// essential when the tight `fixed_bounds` deadlines are used.
  bool receive_priority = true;
};

/// Per-node message counters (the overhead metric of the benchmarks).
struct NodeStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
};

/// One protocol-level event of a cluster execution, as observed at the
/// simulator boundary. The stream of these events is the cluster's
/// timed trace; the conformance layer (proto/conformance.hpp) replays
/// it through the corresponding timed-automata model.
struct ProtocolEvent {
  enum class Kind {
    CoordinatorBeat,          ///< p[0] beat its members (round or initial beat)
    CoordinatorReceivedBeat,  ///< a reply/join beat reached p[0] (node = sender)
    CoordinatorReceivedLeave, ///< a leave beat reached p[0] (node = sender)
    CoordinatorInactivated,   ///< p[0] NV-inactivated
    CoordinatorCrashed,       ///< injected p[0] crash took effect
    ParticipantReceivedBeat,  ///< p[0]'s beat reached p[node]
    ParticipantReplied,       ///< p[node] echoed a beat
    ParticipantJoinBeat,      ///< p[node] sent a join-phase beat
    ParticipantLeft,          ///< p[node] replied with a leave beat
    ParticipantInactivated,   ///< p[node] NV-inactivated
    ParticipantCrashed,       ///< injected p[node] crash took effect
    ParticipantRejoined,      ///< p[node] re-entered the join phase
  };
  Kind kind{};
  sim::Time at = 0;
  int node = 0;  ///< participant id; sender id for CoordinatorReceived*
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& config);

  /// Starts all processes at the current simulation time.
  void start();

  void run_until(sim::Time horizon);

  // Fault/behaviour injection (scheduled at absolute times).
  void crash_coordinator_at(sim::Time when);
  void crash_participant_at(int id, sim::Time when);
  void leave_at(int id, sim::Time when);
  /// Dynamic variant: re-enter the join phase at `when` (no-op unless
  /// the participant has left by then).
  void rejoin_at(int id, sim::Time when);

  /// Network faults: take a directed link down (messages silently
  /// dropped) or bring it back up. Node 0 is the coordinator.
  void fail_link(int from, int to) { net_.set_link_up(from, to, false); }
  void restore_link(int from, int to) { net_.set_link_up(from, to, true); }

  /// Observer called on every non-voluntary inactivation, with the node
  /// id (0 = coordinator) and the time.
  void on_inactivation(std::function<void(int, sim::Time)> cb) {
    inactivation_cb_ = std::move(cb);
  }

  /// Observer called on every protocol-level event (see ProtocolEvent).
  /// Install before start() to capture the complete trace.
  void on_protocol_event(std::function<void(const ProtocolEvent&)> cb) {
    event_cb_ = std::move(cb);
  }

  Coordinator& coordinator() { return *coordinator_; }
  const Coordinator& coordinator() const { return *coordinator_; }
  Participant& participant(int id);
  const Participant& participant(int id) const;
  int participant_count() const { return static_cast<int>(parts_.size()); }

  sim::Simulator& simulator() { return sim_; }
  const sim::NetworkStats& network_stats() const { return net_.stats(); }
  const NodeStats& node_stats(int id) const;

  /// True iff every process has stopped participating (crashed, left,
  /// or inactivated).
  bool all_inactive() const;

 private:
  void dispatch(int node_id, const Actions& actions);
  void emit(ProtocolEvent::Kind kind, int node);
  void arm_timer(int node_id);
  Actions node_elapsed(int node_id, sim::Time now);
  sim::Time node_next_event(int node_id) const;

  ClusterConfig config_;
  sim::Simulator sim_;
  sim::Network<Message> net_;
  std::unique_ptr<Coordinator> coordinator_;
  std::vector<std::unique_ptr<Participant>> parts_;
  std::vector<sim::Simulator::EventId> timers_;  // index: node id
  std::vector<NodeStats> node_stats_;
  std::function<void(int, sim::Time)> inactivation_cb_;
  std::function<void(const ProtocolEvent&)> event_cb_;
  bool started_ = false;
};

}  // namespace ahb::hb
