// Wire image of a heartbeat message, with boundary validation.
//
// Both engines put a fixed 8-byte image on the simulated channel
// instead of the in-memory hb::Message, so the chaos layer's
// CorruptPayload fault (sim::corrupt_bit on the object representation)
// attacks exactly what a radiation-style bit flip would attack on a
// real link. The receiver validates before the protocol engine ever
// sees the payload — parse-or-drop, never act on a corrupted image
// (the CONTRACT-1 fail-safe discipline: an invalid input forces a
// rejection, not a guess).
//
// Layout (byte-addressed, low byte first):
//   bytes 0..3  sender id (two's-complement 32-bit)
//   byte  4     flag (0 or 1; any other value is invalid)
//   byte  5     checksum: XOR of bytes 0..4, XOR 0xA5
//   bytes 6..7  reserved, must be zero
//
// Every single-bit flip is detectable: flips in bytes 0..5 break the
// checksum, a flip in byte 4 additionally leaves {0,1}, and flips in
// bytes 6..7 break the must-be-zero rule. The encoder is injective on
// valid messages, so decode(encode(m)) == m and a rejected image can
// only come from in-flight corruption.
#pragma once

#include <cstdint>
#include <optional>

#include "hb/types.hpp"

namespace ahb::hb {

struct WireMessage {
  std::uint64_t image = 0;
};

namespace wire_detail {
inline std::uint8_t checksum(std::uint64_t image) {
  std::uint8_t sum = 0xA5;
  for (int byte = 0; byte < 5; ++byte) {
    sum = static_cast<std::uint8_t>(sum ^ ((image >> (8 * byte)) & 0xFF));
  }
  return sum;
}
}  // namespace wire_detail

inline WireMessage wire_encode(const Message& message) {
  std::uint64_t image =
      static_cast<std::uint32_t>(message.sender);
  image |= static_cast<std::uint64_t>(message.flag ? 1 : 0) << 32;
  image |= static_cast<std::uint64_t>(wire_detail::checksum(image)) << 40;
  return WireMessage{image};
}

/// Parse-or-drop: nullopt means the image is not one wire_encode can
/// produce and the delivery must be rejected at the boundary.
inline std::optional<Message> wire_decode(const WireMessage& wire) {
  if ((wire.image >> 48) != 0) return std::nullopt;  // reserved bytes
  const std::uint8_t flag_byte =
      static_cast<std::uint8_t>((wire.image >> 32) & 0xFF);
  if (flag_byte > 1) return std::nullopt;
  if (static_cast<std::uint8_t>((wire.image >> 40) & 0xFF) !=
      wire_detail::checksum(wire.image & 0xFF'FFFF'FFFFULL)) {
    return std::nullopt;
  }
  Message message;
  message.sender = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(wire.image & 0xFFFF'FFFFULL));
  message.flag = flag_byte == 1;
  return message;
}

/// What a receiver without boundary validation acts on (the mutation
/// canary in the chaos tests): raw field extraction, no checks.
inline Message wire_decode_unchecked(const WireMessage& wire) {
  Message message;
  message.sender = static_cast<std::int32_t>(
      static_cast<std::uint32_t>(wire.image & 0xFFFF'FFFFULL));
  message.flag = ((wire.image >> 32) & 0xFF) != 0;
  return message;
}

}  // namespace ahb::hb
