#include "hb/cluster.hpp"

#include "util/contracts.hpp"

namespace ahb::hb {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      sim_(config.seed),
      net_(sim_, sim::LinkParams{
                     .loss_probability = config.loss_probability,
                     .min_delay = config.min_delay,
                     .max_delay = config.max_delay >= 0
                                      ? config.max_delay
                                      : std::max<sim::Time>(
                                            config.protocol.tmin / 2, 0),
                     .corrupt_probability = config.corrupt_probability,
                 }) {
  AHB_EXPECTS(config.protocol.valid());
  AHB_EXPECTS(config.participants >= 1);

  // The channel assumption bounds the round trip by tmin, so a one-way
  // delay beyond tmin/2 is out of spec (NetworkStats::out_of_spec_delay
  // counts such samples when the chaos layer injects them).
  net_.set_spec_max_delay(config.protocol.tmin / 2);

  std::vector<int> initial_members;
  if (!variant_joins(config.protocol.variant)) {
    for (int i = 1; i <= config.participants; ++i) {
      initial_members.push_back(i);
    }
  }
  coordinator_ =
      std::make_unique<Coordinator>(config.protocol, initial_members);
  for (int i = 1; i <= config.participants; ++i) {
    parts_.push_back(std::make_unique<Participant>(
        config.protocol, i, !variant_joins(config.protocol.variant)));
  }
  timers_.assign(static_cast<std::size_t>(config.participants) + 1,
                 sim::Simulator::kInvalidEvent);
  node_stats_.assign(static_cast<std::size_t>(config.participants) + 1,
                     NodeStats{});
  clocks_.assign(static_cast<std::size_t>(config.participants) + 1,
                 NodeClock{});

  // The legacy lambda observers ride the sink chain as its first entry;
  // with no callbacks installed its masks are zero and the emit path
  // skips event construction, exactly like the old `if (event_cb_)`.
  sinks_.add(&legacy_);
  // Claim the network's observer slot to feed channel events to the
  // sinks (the reason Cluster::network() documents the slot as taken).
  net_.on_channel_event([this](const sim::ChannelEvent& event) {
    if (sinks_.wants(event.kind)) sinks_.emit(event);
  });

  net_.attach(0, [this](int from, const WireMessage& wire, std::uint64_t id) {
    ++node_stats_[0].received;
    // Boundary validation before the engine sees anything: a corrupted
    // image is rejected and counted, never acted on (fail-safe).
    const std::optional<Message> msg = decode_wire(from, wire);
    if (!msg) {
      reject_wire(from, 0, id);
      return;
    }
    // A delivery to a crashed/inactive coordinator is absorbed silently
    // (the model aborts the channel wait instead of delivering).
    if (coordinator_->status() == Status::Active) {
      emit(msg->flag ? ProtocolEvent::Kind::CoordinatorReceivedBeat
                     : ProtocolEvent::Kind::CoordinatorReceivedLeave,
           from, id);
    }
    dispatch(0, coordinator_->on_message(local_now(0), *msg));
    arm_timer(0);
  });
  for (int i = 1; i <= config.participants; ++i) {
    net_.attach(i, [this, i](int from, const WireMessage& wire,
                             std::uint64_t id) {
      ++node_stats_[static_cast<std::size_t>(i)].received;
      const std::optional<Message> msg = decode_wire(from, wire);
      if (!msg) {
        reject_wire(from, i, id);
        return;
      }
      if (msg->flag &&
          parts_[static_cast<std::size_t>(i) - 1]->status() ==
              Status::Active) {
        emit(ProtocolEvent::Kind::ParticipantReceivedBeat, i, id);
      }
      dispatch(i, parts_[static_cast<std::size_t>(i) - 1]->on_message(
                      local_now(i), *msg));
      arm_timer(i);
    });
  }
}

std::optional<Message> Cluster::decode_wire(int from,
                                            const WireMessage& wire) const {
  if (!config_.wire_validation) return wire_decode_unchecked(wire);
  std::optional<Message> msg = wire_decode(wire);
  // The checksum cannot catch a flip that lands a *different* valid
  // image; the transport-level origin does: the sender field must match
  // the link the image arrived on.
  if (msg && msg->sender != from) return std::nullopt;
  return msg;
}

void Cluster::reject_wire(int from, int to, std::uint64_t id) {
  net_.count_rejection();
  if (sinks_.wants(sim::ChannelEvent::Kind::Rejected)) {
    sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Rejected, from, to,
                                  id, sim_.now(), 0});
  }
}

void Cluster::start() {
  AHB_EXPECTS(!started_);
  started_ = true;
  dispatch(0, coordinator_->start(local_now(0)));
  arm_timer(0);
  for (int i = 1; i <= participant_count(); ++i) {
    dispatch(i, parts_[static_cast<std::size_t>(i) - 1]->start(local_now(i)));
    arm_timer(i);
  }
}

void Cluster::run_until(sim::Time horizon) { sim_.run_until(horizon); }

void Cluster::crash_coordinator_at(sim::Time when) {
  sim_.at(when, [this] {
    const bool was_active = coordinator_->status() == Status::Active;
    coordinator_->crash(local_now(0));
    if (was_active) emit(ProtocolEvent::Kind::CoordinatorCrashed, 0);
  });
}

void Cluster::crash_participant_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  sim_.at(when, [this, id] {
    const bool was_active = participant(id).status() == Status::Active;
    participant(id).crash(local_now(id));
    if (was_active) emit(ProtocolEvent::Kind::ParticipantCrashed, id);
  });
}

void Cluster::leave_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  sim_.at(when, [this, id] {
    if (!proto::variant_leaves(config_.protocol.variant)) return;
    if (participant(id).status() != Status::Active) return;
    participant(id).request_leave();
  });
}

void Cluster::rejoin_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  sim_.at(when, [this, id] {
    if (participant(id).status() != Status::Left) return;
    // The reincarnation hazard: rejoining before the leave beat's delay
    // bound has drained risks a stale leave de-registering the new
    // incarnation. Scheduled rejoins that arrive too early (the leave
    // happens at the reply to the next beat, so its instant is not
    // known when the rejoin is scheduled) are dropped rather than
    // asserted on — chaos schedules hit this race by design.
    if (local_now(id) < proto::earliest_rejoin(participant(id).left_at(),
                                               config_.protocol.timing())) {
      return;
    }
    emit(ProtocolEvent::Kind::ParticipantRejoined, id);
    dispatch(id, participant(id).rejoin(local_now(id)));
    arm_timer(id);
  });
}

Participant& Cluster::participant(int id) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  return *parts_[static_cast<std::size_t>(id) - 1];
}

const Participant& Cluster::participant(int id) const {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  return *parts_[static_cast<std::size_t>(id) - 1];
}

const NodeStats& Cluster::node_stats(int id) const {
  AHB_EXPECTS(id >= 0 && id <= participant_count());
  return node_stats_[static_cast<std::size_t>(id)];
}

void Cluster::set_drift(int id, std::int64_t num, std::int64_t den) {
  AHB_EXPECTS(id >= 0 && id <= participant_count());
  AHB_EXPECTS(num > 0 && den > 0);
  auto& clock = clocks_[static_cast<std::size_t>(id)];
  const sim::Time now = sim_.now();
  // Close the old affine segment (register and engine anchor stay
  // continuous across the rate change).
  clock.hw_base = clock.hw(now);
  clock.base_engine =
      clock.base_engine + (now - clock.base_global) * clock.num / clock.den;
  clock.base_global = now;
  clock.num = num;
  clock.den = den;
  // Timers were armed under the old rate; re-arm at the new one.
  if (started_) arm_timer(id);
}

sim::Time Cluster::advance_clock(int node_id) {
  auto& clock = clocks_[static_cast<std::size_t>(node_id)];
  const std::uint64_t hw_now = clock.hw(sim_.now());
  if (hw_now == clock.hw_last) return clock.engine_local;
  if (config_.clock_guard) {
    // Modular-time idiom: only the age between two reads is meaningful,
    // and only when it fits the half range. An invalid age is never
    // acted on — the fault latches and the caller fences the node.
    const std::uint64_t age = hw_now - clock.hw_last;
    clock.hw_last = hw_now;
    if (age < (1ULL << 63)) {
      clock.engine_local += static_cast<sim::Time>(age);
    } else {
      clock.fault = true;
    }
    return clock.engine_local;
  }
  // Guard off (the historical bug): absolute register values compared
  // raw, so a wrap or backward jump makes local time leap backwards.
  // Saturating arithmetic keeps the leap itself well-defined.
  static constexpr sim::Time kClamp = kNever / 4;
  const auto clamped = [](__int128 value) {
    if (value > kClamp) return kClamp;
    if (value < -kClamp) return -kClamp;
    return static_cast<sim::Time>(value);
  };
  if (hw_now >= clock.hw_last) {
    clock.engine_local = clamped(static_cast<__int128>(clock.engine_local) +
                                 (hw_now - clock.hw_last));
  } else {
    clock.engine_local = clamped(static_cast<__int128>(clock.engine_local) -
                                 (clock.hw_last - hw_now));
    // The reconstruction left the affine track timers were mapped on;
    // re-anchor so future deadlines translate from the leaped clock.
    clock.hw_base = hw_now;
    clock.base_global = sim_.now();
    clock.base_engine = clock.engine_local;
  }
  clock.hw_last = hw_now;
  return clock.engine_local;
}

void Cluster::fence_node(int node_id, sim::Time local) {
  dispatch(node_id,
           node_id == 0
               ? coordinator_->fence(local)
               : parts_[static_cast<std::size_t>(node_id) - 1]->fence(local));
  arm_timer(node_id);  // engine is inactive: cancels any pending timer
}

void Cluster::corrupt_clock_at(int id, sim::Time when, std::int64_t delta) {
  AHB_EXPECTS(id >= 0 && id <= participant_count());
  sim_.at(when, [this, id, delta] {
    auto& clock = clocks_[static_cast<std::size_t>(id)];
    const sim::Time now = sim_.now();
    // Jump the register (rebasing the rate segment at the injection
    // instant) and force a clock read right away, so the node's
    // reaction — fail-safe fence on a backward jump, conservative
    // timeout on a forward one — is deterministic.
    clock.hw_base = clock.hw(now) + static_cast<std::uint64_t>(delta);
    clock.base_global = now;
    const sim::Time local = advance_clock(id);
    clock.base_engine = local;  // re-anchor the timer mapping
    clock.base_global = now;
    if (clock.fault) {
      fence_node(id, local);
      return;
    }
    // A forward jump may have blown straight past engine deadlines.
    dispatch(id, node_elapsed(id, local));
    arm_timer(id);
  });
}

void Cluster::wrap_clock_at(int id, sim::Time when, std::uint64_t margin) {
  AHB_EXPECTS(id >= 0 && id <= participant_count());
  sim_.at(when, [this, id, margin] {
    auto& clock = clocks_[static_cast<std::size_t>(id)];
    const sim::Time now = sim_.now();
    const std::uint64_t hw_now = clock.hw(now);
    // Reposition the register `margin` ticks before the 2^64 boundary,
    // translating the read history by the same shift: no age changes,
    // only the absolute position — which the modular idiom never looks
    // at, and the raw comparison fatally does once the wrap crosses.
    // The engine<->global affine segment closes here like on a rate
    // change: the reposition must not move any armed deadline.
    const std::uint64_t shift = (0 - margin) - hw_now;
    clock.hw_base = hw_now + shift;
    clock.base_engine =
        clock.base_engine + (now - clock.base_global) * clock.num / clock.den;
    clock.base_global = now;
    clock.hw_last += shift;
  });
}

bool Cluster::all_inactive() const {
  if (coordinator_->status() == Status::Active) return false;
  for (const auto& p : parts_) {
    if (p->status() == Status::Active) return false;
  }
  return true;
}

void Cluster::dispatch(int node_id, const Actions& actions) {
  // The coordinator's beats fan out as one message per member but form
  // one protocol event per round (the model's single broadcast edge) —
  // including member-less rounds, where the broadcast has no receivers.
  bool coordinator_beat = node_id == 0 && actions.round_completed;
  std::uint64_t beat_id = 0;
  std::uint32_t beat_fanout = 0;
  for (const auto& out : actions.messages) {
    ++node_stats_[static_cast<std::size_t>(node_id)].sent;
    const std::uint64_t id =
        net_.send(node_id, out.to, wire_encode(out.message));
    if (node_id == 0) {
      coordinator_beat = coordinator_beat || out.message.flag;
      if (out.message.flag) {
        if (beat_id == 0) beat_id = id;
        ++beat_fanout;
      }
    } else if (!out.message.flag) {
      emit(ProtocolEvent::Kind::ParticipantLeft, node_id, id, 1);
    } else if (parts_[static_cast<std::size_t>(node_id) - 1]->joined()) {
      emit(ProtocolEvent::Kind::ParticipantReplied, node_id, id, 1);
    } else {
      emit(ProtocolEvent::Kind::ParticipantJoinBeat, node_id, id, 1);
    }
  }
  if (coordinator_beat) {
    emit(ProtocolEvent::Kind::CoordinatorBeat, 0, beat_id, beat_fanout);
  }
  if (actions.inactivated) {
    emit(node_id == 0 ? ProtocolEvent::Kind::CoordinatorInactivated
                      : ProtocolEvent::Kind::ParticipantInactivated,
         node_id);
  }
}

void Cluster::emit(ProtocolEvent::Kind kind, int node, std::uint64_t msg_id,
                   std::uint32_t fanout) {
  if (sinks_.wants(kind)) {
    sinks_.emit(ProtocolEvent{kind, sim_.now(), node, msg_id, fanout});
  }
}

sim::Time Cluster::node_next_event(int node_id) const {
  return node_id == 0
             ? coordinator_->next_event_time()
             : parts_[static_cast<std::size_t>(node_id) - 1]
                   ->next_event_time();
}

Actions Cluster::node_elapsed(int node_id, sim::Time now) {
  return node_id == 0
             ? coordinator_->on_elapsed(now)
             : parts_[static_cast<std::size_t>(node_id) - 1]->on_elapsed(now);
}

void Cluster::arm_timer(int node_id) {
  auto& timer = timers_[static_cast<std::size_t>(node_id)];
  sim_.cancel(timer);
  timer = sim::Simulator::kInvalidEvent;
  // Engine deadlines live on the node's (possibly drifting) local
  // clock; the host timer fires at the global instant that reaches
  // them.
  const sim::Time when =
      clocks_[static_cast<std::size_t>(node_id)].global_for(
          node_next_event(node_id));
  if (when == kNever) return;
  // Timers run at lower priority than deliveries when receive_priority
  // is on, so a beat arriving exactly at a deadline is processed first.
  timer = sim_.at(
      std::max(when, sim_.now()),
      [this, node_id] {
        timers_[static_cast<std::size_t>(node_id)] =
            sim::Simulator::kInvalidEvent;
        dispatch(node_id, node_elapsed(node_id, local_now(node_id)));
        arm_timer(node_id);
      },
      config_.receive_priority ? 1 : 0);
}

}  // namespace ahb::hb
