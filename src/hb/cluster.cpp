#include "hb/cluster.hpp"

#include "util/contracts.hpp"

namespace ahb::hb {

Cluster::Cluster(const ClusterConfig& config)
    : config_(config),
      sim_(config.seed),
      net_(sim_, sim::Network<Message>::LinkParams{
                     config.loss_probability, config.min_delay,
                     config.max_delay >= 0 ? config.max_delay
                                           : std::max<sim::Time>(
                                                 config.protocol.tmin / 2, 0),
                 }) {
  AHB_EXPECTS(config.protocol.valid());
  AHB_EXPECTS(config.participants >= 1);

  std::vector<int> initial_members;
  if (!variant_joins(config.protocol.variant)) {
    for (int i = 1; i <= config.participants; ++i) {
      initial_members.push_back(i);
    }
  }
  coordinator_ =
      std::make_unique<Coordinator>(config.protocol, initial_members);
  for (int i = 1; i <= config.participants; ++i) {
    parts_.push_back(std::make_unique<Participant>(
        config.protocol, i, !variant_joins(config.protocol.variant)));
  }
  timers_.assign(static_cast<std::size_t>(config.participants) + 1,
                 sim::Simulator::kInvalidEvent);
  node_stats_.assign(static_cast<std::size_t>(config.participants) + 1,
                     NodeStats{});

  net_.attach(0, [this](int from, const Message& msg) {
    (void)from;
    ++node_stats_[0].received;
    dispatch(0, coordinator_->on_message(sim_.now(), msg));
    arm_timer(0);
  });
  for (int i = 1; i <= config.participants; ++i) {
    net_.attach(i, [this, i](int from, const Message& msg) {
      (void)from;
      ++node_stats_[static_cast<std::size_t>(i)].received;
      dispatch(i, parts_[static_cast<std::size_t>(i) - 1]->on_message(
                      sim_.now(), msg));
      arm_timer(i);
    });
  }
}

void Cluster::start() {
  AHB_EXPECTS(!started_);
  started_ = true;
  dispatch(0, coordinator_->start(sim_.now()));
  arm_timer(0);
  for (int i = 1; i <= participant_count(); ++i) {
    dispatch(i, parts_[static_cast<std::size_t>(i) - 1]->start(sim_.now()));
    arm_timer(i);
  }
}

void Cluster::run_until(sim::Time horizon) { sim_.run_until(horizon); }

void Cluster::crash_coordinator_at(sim::Time when) {
  sim_.at(when, [this] { coordinator_->crash(sim_.now()); });
}

void Cluster::crash_participant_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  sim_.at(when,
          [this, id] { participant(id).crash(sim_.now()); });
}

void Cluster::leave_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  sim_.at(when, [this, id] { participant(id).request_leave(); });
}

void Cluster::rejoin_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  sim_.at(when, [this, id] {
    if (participant(id).status() != Status::Left) return;
    dispatch(id, participant(id).rejoin(sim_.now()));
    arm_timer(id);
  });
}

Participant& Cluster::participant(int id) {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  return *parts_[static_cast<std::size_t>(id) - 1];
}

const Participant& Cluster::participant(int id) const {
  AHB_EXPECTS(id >= 1 && id <= participant_count());
  return *parts_[static_cast<std::size_t>(id) - 1];
}

const NodeStats& Cluster::node_stats(int id) const {
  AHB_EXPECTS(id >= 0 && id <= participant_count());
  return node_stats_[static_cast<std::size_t>(id)];
}

bool Cluster::all_inactive() const {
  if (coordinator_->status() == Status::Active) return false;
  for (const auto& p : parts_) {
    if (p->status() == Status::Active) return false;
  }
  return true;
}

void Cluster::dispatch(int node_id, const Actions& actions) {
  for (const auto& out : actions.messages) {
    ++node_stats_[static_cast<std::size_t>(node_id)].sent;
    net_.send(node_id, out.to, out.message);
  }
  if (actions.inactivated && inactivation_cb_) {
    inactivation_cb_(node_id, sim_.now());
  }
}

sim::Time Cluster::node_next_event(int node_id) const {
  return node_id == 0
             ? coordinator_->next_event_time()
             : parts_[static_cast<std::size_t>(node_id) - 1]
                   ->next_event_time();
}

Actions Cluster::node_elapsed(int node_id, sim::Time now) {
  return node_id == 0
             ? coordinator_->on_elapsed(now)
             : parts_[static_cast<std::size_t>(node_id) - 1]->on_elapsed(now);
}

void Cluster::arm_timer(int node_id) {
  auto& timer = timers_[static_cast<std::size_t>(node_id)];
  sim_.cancel(timer);
  timer = sim::Simulator::kInvalidEvent;
  const sim::Time when = node_next_event(node_id);
  if (when == kNever) return;
  // Timers run at lower priority than deliveries when receive_priority
  // is on, so a beat arriving exactly at a deadline is processed first.
  timer = sim_.at(
      std::max(when, sim_.now()),
      [this, node_id] {
        timers_[static_cast<std::size_t>(node_id)] =
            sim::Simulator::kInvalidEvent;
        dispatch(node_id, node_elapsed(node_id, sim_.now()));
        arm_timer(node_id);
      },
      config_.receive_priority ? 1 : 0);
}

}  // namespace ahb::hb
