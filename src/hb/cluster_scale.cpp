#include "hb/cluster_scale.hpp"

#include <algorithm>
#include <bit>

#include "util/contracts.hpp"

namespace ahb::hb {

ScaleCluster::ScaleCluster(const ClusterConfig& config)
    : config_(config),
      participants_(config.participants),
      timing_(config.protocol.timing()),
      timer_priority_(config.receive_priority ? 1 : 0),
      rng_(config.seed),
      loss_probability_(config.loss_probability),
      corrupt_probability_(config.corrupt_probability),
      min_delay_(config.min_delay),
      delay_span_((config.max_delay >= 0
                       ? config.max_delay
                       : std::max<sim::Time>(config.protocol.tmin / 2, 0)) -
                  config.min_delay),
      spec_max_delay_(config.protocol.tmin / 2),
      t_(config.protocol.tmax) {
  AHB_EXPECTS(config.protocol.valid());
  AHB_EXPECTS(config.participants >= 1);
  AHB_EXPECTS(delay_span_ >= 0);

  sinks_.add(&legacy_);

  const auto slots = static_cast<std::size_t>(participants_) + 1;
  newest_to_coord_.assign(slots, 0);
  newest_from_coord_.assign(slots, 0);
  joined_.resize(slots);
  rcvd_.resize(slots);
  registered_.resize(slots);
  tm_.assign(slots, 0);
  p_status_.assign(slots, Status::Active);
  p_joined_.resize(slots);
  p_leave_requested_.resize(slots);
  p_deadline_.assign(slots, 0);
  p_next_join_.assign(slots, kNever);
  p_inactivated_at_.assign(slots, kNever);
  p_left_at_.assign(slots, kNever);
  p_timer_.assign(slots, Wheel::Handle{});

  // A-priori membership (binary/static family): every participant
  // starts registered, joined and with a granted first round, exactly
  // like the legacy Coordinator's constructor.
  if (!variant_joins(config.protocol.variant)) {
    for (int i = 1; i <= participants_; ++i) {
      joined_.set(static_cast<std::size_t>(i));
      rcvd_.set(static_cast<std::size_t>(i));
      registered_.set(static_cast<std::size_t>(i));
      tm_[static_cast<std::size_t>(i)] = config.protocol.tmax;
      p_joined_.set(static_cast<std::size_t>(i));
    }
  }
}

void ScaleCluster::start() {
  AHB_EXPECTS(!started_);
  started_ = true;

  // Coordinator start: arm the first round; the revised-binary variant
  // beats immediately.
  round_deadline_ = now_ + config_.protocol.tmax;
  if (proto::rules_for(config_.protocol.variant).initial_beat) {
    std::uint64_t beat_id = 0;
    std::uint32_t fanout = 0;
    for (int i = 1; i <= participants_; ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (!registered_.test(idx)) continue;
      rcvd_.reset(idx);
      const std::uint64_t id = send(0, i, true);
      if (beat_id == 0) beat_id = id;
      ++fanout;
    }
    scale_stats_.beats += fanout;
    emit(ProtocolEvent::Kind::CoordinatorBeat, 0, beat_id, fanout);
  }
  arm_node_timer(0);

  for (int i = 1; i <= participants_; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (p_joined_.test(idx)) {
      p_deadline_[idx] = now_ + config_.protocol.participant_deadline();
    } else {
      p_deadline_[idx] = now_ + config_.protocol.join_deadline();
      p_next_join_[idx] = now_ + proto::join_beat_period(timing_);
    }
    arm_node_timer(i);
  }
}

void ScaleCluster::run_until(sim::Time horizon) {
  Wheel::Expired expired;
  while (wheel_.pop(horizon, expired)) {
    now_ = expired.when;
    handle(expired.payload);
  }
  if (now_ < horizon) {
    now_ = horizon;
    wheel_.advance_to(horizon);
  }
}

void ScaleCluster::crash_coordinator_at(sim::Time when) {
  wheel_.arm(when, 0, Ev{Ev::Kind::CrashCoordinator, true, 0, 0, 0});
}

void ScaleCluster::crash_participant_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participants_);
  wheel_.arm(when, 0, Ev{Ev::Kind::CrashParticipant, true, 0, id, 0});
}

void ScaleCluster::leave_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participants_);
  wheel_.arm(when, 0, Ev{Ev::Kind::Leave, true, 0, id, 0});
}

void ScaleCluster::rejoin_at(int id, sim::Time when) {
  AHB_EXPECTS(id >= 1 && id <= participants_);
  wheel_.arm(when, 0, Ev{Ev::Kind::Rejoin, true, 0, id, 0});
}

void ScaleCluster::corrupt_clock_at(int id, sim::Time when,
                                    std::int64_t delta) {
  AHB_EXPECTS(id >= 0 && id <= participants_);
  wheel_.arm(when, 0,
             Ev{Ev::Kind::ClockOffset, true, 0, id, 0,
                static_cast<std::uint64_t>(delta)});
}

void ScaleCluster::wrap_clock_at(int id, sim::Time when,
                                 std::uint64_t margin) {
  AHB_EXPECTS(id >= 0 && id <= participants_);
  wheel_.arm(when, 0, Ev{Ev::Kind::ClockWrap, true, 0, id, 0, margin});
}

bool ScaleCluster::is_member(int id) const {
  AHB_EXPECTS(id >= 1 && id <= participants_);
  return joined_.test(static_cast<std::size_t>(id));
}

Status ScaleCluster::participant_status(int id) const {
  AHB_EXPECTS(id >= 1 && id <= participants_);
  return p_status_[static_cast<std::size_t>(id)];
}

sim::Time ScaleCluster::participant_inactivated_at(int id) const {
  AHB_EXPECTS(id >= 1 && id <= participants_);
  return p_inactivated_at_[static_cast<std::size_t>(id)];
}

bool ScaleCluster::participant_joined(int id) const {
  AHB_EXPECTS(id >= 1 && id <= participants_);
  return p_joined_.test(static_cast<std::size_t>(id));
}

bool ScaleCluster::all_inactive() const {
  if (coord_status_ == Status::Active) return false;
  for (int i = 1; i <= participants_; ++i) {
    if (p_status_[static_cast<std::size_t>(i)] == Status::Active) return false;
  }
  return true;
}

void ScaleCluster::handle(const Ev& ev) {
  switch (ev.kind) {
    case Ev::Kind::Deliver:
      if (ev.node == 0) {
        deliver_to_coordinator(ev.from, ev.wire, ev.msg_id);
      } else {
        deliver_to_participant(ev.node, ev.from, ev.wire, ev.msg_id);
      }
      break;
    case Ev::Kind::NodeTimer:
      if (ev.node == 0) {
        coordinator_elapsed();
      } else {
        participant_elapsed(ev.node);
      }
      break;
    case Ev::Kind::CrashCoordinator:
      if (coord_status_ == Status::Active) {
        coord_status_ = Status::CrashedVoluntarily;
        emit(ProtocolEvent::Kind::CoordinatorCrashed, 0);
      }
      break;
    case Ev::Kind::CrashParticipant: {
      const auto idx = static_cast<std::size_t>(ev.node);
      if (p_status_[idx] == Status::Active) {
        p_status_[idx] = Status::CrashedVoluntarily;
        emit(ProtocolEvent::Kind::ParticipantCrashed, ev.node);
      }
      break;
    }
    case Ev::Kind::Leave: {
      if (!proto::variant_leaves(config_.protocol.variant)) break;
      const auto idx = static_cast<std::size_t>(ev.node);
      if (p_status_[idx] != Status::Active) break;
      p_leave_requested_.set(idx);
      break;
    }
    case Ev::Kind::Rejoin: {
      const auto idx = static_cast<std::size_t>(ev.node);
      if (p_status_[idx] != Status::Left) break;
      if (now_ < proto::earliest_rejoin(p_left_at_[idx], timing_)) break;
      emit(ProtocolEvent::Kind::ParticipantRejoined, ev.node);
      p_status_[idx] = Status::Active;
      p_joined_.reset(idx);
      p_leave_requested_.reset(idx);
      p_deadline_[idx] = now_ + config_.protocol.join_deadline();
      p_next_join_[idx] = now_ + proto::join_beat_period(timing_);
      arm_node_timer(ev.node);
      break;
    }
    case Ev::Kind::ClockOffset:
      apply_clock_offset(ev.node, static_cast<std::int64_t>(ev.wire));
      break;
    case Ev::Kind::ClockWrap:
      // Modular idiom (guard on): only ages are ever compared, so the
      // register's absolute position — wrap included — is unobservable.
      // Guard off: the raw comparison breaks when the register crosses
      // 2^64, i.e. `margin` ticks from now.
      if (!config_.clock_guard) {
        constexpr sim::Time kFar = kNever / 4;
        const sim::Time margin =
            ev.wire > static_cast<std::uint64_t>(kFar - now_)
                ? kFar - now_
                : static_cast<sim::Time>(ev.wire);
        wheel_.arm(now_ + margin, 0,
                   Ev{Ev::Kind::ClockWrapCross, true, 0, ev.node, 0, 0});
      }
      break;
    case Ev::Kind::ClockWrapCross:
      apply_wrap_cross(ev.node);
      break;
  }
}

/// Deadline image of a register jump by `delta`: a forward jump pulls
/// the deadline closer (clamped to fire immediately), a backward jump
/// pushes it out (saturated well below the kNever sentinel).
namespace {
sim::Time shift_deadline(sim::Time deadline, std::int64_t delta,
                         sim::Time now) {
  if (deadline == kNever) return kNever;
  static constexpr sim::Time kFar = kNever / 4;
  const __int128 shifted = static_cast<__int128>(deadline) - delta;
  if (shifted <= now) return now;
  if (shifted >= kFar) return kFar;
  return static_cast<sim::Time>(shifted);
}
}  // namespace

void ScaleCluster::fence_node(int node) {
  if (node == 0) {
    if (coord_status_ != Status::Active) return;
    coord_status_ = Status::InactiveNonVoluntarily;
    coord_inactivated_at_ = now_;
    emit(ProtocolEvent::Kind::CoordinatorInactivated, 0);
  } else {
    const auto idx = static_cast<std::size_t>(node);
    if (p_status_[idx] != Status::Active) return;
    p_status_[idx] = Status::InactiveNonVoluntarily;
    p_inactivated_at_[idx] = now_;
    emit(ProtocolEvent::Kind::ParticipantInactivated, node);
  }
  arm_node_timer(node);  // inactive: cancels the pending timer
}

void ScaleCluster::apply_clock_offset(int node, std::int64_t delta) {
  if (delta < 0 && config_.clock_guard) {
    // Half-range rule: a backward jump is an invalid age — fail-safe
    // fence, never act (matches hb::Cluster's modular reconstruction).
    fence_node(node);
    return;
  }
  // Forward jump (or guard off): local time moved by `delta`, so every
  // absolute deadline moves by -delta relative to it. Guard-off
  // backward jumps leave the node silently over-waiting, which is
  // exactly the bug the half-range rule removes.
  if (node == 0) {
    if (coord_status_ != Status::Active) return;
    round_deadline_ = shift_deadline(round_deadline_, delta, now_);
  } else {
    const auto idx = static_cast<std::size_t>(node);
    if (p_status_[idx] != Status::Active) return;
    p_deadline_[idx] = shift_deadline(p_deadline_[idx], delta, now_);
    p_next_join_[idx] = shift_deadline(p_next_join_[idx], delta, now_);
  }
  arm_node_timer(node);
}

void ScaleCluster::apply_wrap_cross(int node) {
  // Guard off only (never armed otherwise): at the crossing the raw
  // reconstruction leaps back ~2^64, so every armed deadline becomes
  // unreachable. A later delivery re-arms participant deadlines
  // relative to the leaped clock (transient recovery); the coordinator
  // has no delivery-driven deadline refresh and stalls for good.
  if (node == 0) {
    if (coord_status_ != Status::Active) return;
    round_deadline_ = kNever;
  } else {
    const auto idx = static_cast<std::size_t>(node);
    if (p_status_[idx] != Status::Active) return;
    p_deadline_[idx] = kNever;
    p_next_join_[idx] = kNever;
  }
  arm_node_timer(node);
}

std::uint64_t ScaleCluster::send(int from, int to, bool flag) {
  const std::uint64_t id = next_msg_id_++;
  ++net_stats_.sent;
  if (sinks_.wants(sim::ChannelEvent::Kind::Sent)) {
    sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Sent, from, to, id,
                                  now_, 0});
  }
  // Same per-send draw order as sim::Network: the loss Bernoulli first
  // (a no-draw when the probability is zero), then the corruption roll
  // (chance + bit index, only when armed), then the delay sample — this
  // is what keeps the seeded stream identical to the legacy run.
  if (rng_.chance(loss_probability_)) {
    ++net_stats_.lost;
    if (sinks_.wants(sim::ChannelEvent::Kind::Lost)) {
      sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Lost, from, to,
                                    id, now_, 0});
    }
    return id;
  }
  WireMessage wire = wire_encode(Message{from, flag});
  if (corrupt_probability_ > 0 && rng_.chance(corrupt_probability_)) {
    sim::corrupt_bit(wire, rng_.below(sizeof(WireMessage) * 8));
    ++net_stats_.corrupted;
    if (sinks_.wants(sim::ChannelEvent::Kind::Corrupted)) {
      sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Corrupted, from,
                                    to, id, now_, 0});
    }
  }
  const sim::Time delay =
      min_delay_ + static_cast<sim::Time>(rng_.below(
                       static_cast<std::uint64_t>(delay_span_) + 1));
  if (spec_max_delay_ >= 0 && delay > spec_max_delay_) {
    ++net_stats_.out_of_spec_delay;
  }
  wheel_.arm(now_ + delay, 0,
             Ev{Ev::Kind::Deliver, flag, from, to, id, wire.image});
  return id;
}

void ScaleCluster::track_delivery(std::vector<std::uint64_t>& newest,
                                  int index, std::uint64_t id) {
  std::uint64_t& slot = newest[static_cast<std::size_t>(index)];
  if (id < slot) {
    ++net_stats_.reordered;
  } else {
    slot = id;
  }
}

std::optional<Message> ScaleCluster::decode_wire(
    int from, const WireMessage& wire) const {
  if (!config_.wire_validation) return wire_decode_unchecked(wire);
  std::optional<Message> msg = wire_decode(wire);
  // Origin check, same as the legacy engine: the sender field must
  // match the link the image arrived on.
  if (msg && msg->sender != from) return std::nullopt;
  return msg;
}

void ScaleCluster::deliver_to_coordinator(int from, std::uint64_t wire,
                                          std::uint64_t id) {
  ++net_stats_.delivered;
  if (sinks_.wants(sim::ChannelEvent::Kind::Delivered)) {
    sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Delivered, from, 0,
                                  id, now_, 0});
  }
  track_delivery(newest_to_coord_, from, id);
  // Boundary validation, after the same delivery bookkeeping and before
  // any protocol effect — the exact legacy receive path. A rejected
  // image returns without re-arming the timer, like the legacy handler.
  const std::optional<Message> msg = decode_wire(from, WireMessage{wire});
  if (!msg) {
    ++net_stats_.rejected;
    if (sinks_.wants(sim::ChannelEvent::Kind::Rejected)) {
      sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Rejected, from,
                                    0, id, now_, 0});
    }
    return;
  }
  const bool flag = msg->flag;
  if (coord_status_ == Status::Active) {
    emit(flag ? ProtocolEvent::Kind::CoordinatorReceivedBeat
              : ProtocolEvent::Kind::CoordinatorReceivedLeave,
         from, id);
    const auto idx = static_cast<std::size_t>(from);
    if (flag) {
      registered_.set(idx);
      if (!joined_.test(idx)) {
        joined_.set(idx);
        tm_[idx] = config_.protocol.tmax;
      }
      rcvd_.set(idx);
    } else if (proto::variant_leaves(config_.protocol.variant) &&
               registered_.test(idx)) {
      joined_.reset(idx);
      rcvd_.reset(idx);
      // Acknowledge the departure with a false-flag beat (no protocol
      // event — same as the legacy dispatch path).
      send(0, from, false);
    }
  }
  arm_node_timer(0);
}

void ScaleCluster::deliver_to_participant(int id, int from,
                                          std::uint64_t wire,
                                          std::uint64_t msg_id) {
  ++net_stats_.delivered;
  if (sinks_.wants(sim::ChannelEvent::Kind::Delivered)) {
    sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Delivered, from, id,
                                  msg_id, now_, 0});
  }
  track_delivery(newest_from_coord_, id, msg_id);
  const auto idx = static_cast<std::size_t>(id);
  const std::optional<Message> msg = decode_wire(from, WireMessage{wire});
  if (!msg) {
    ++net_stats_.rejected;
    if (sinks_.wants(sim::ChannelEvent::Kind::Rejected)) {
      sinks_.emit(sim::ChannelEvent{sim::ChannelEvent::Kind::Rejected, from,
                                    id, msg_id, now_, 0});
    }
    return;
  }
  const bool flag = msg->flag;
  if (flag && p_status_[idx] == Status::Active) {
    emit(ProtocolEvent::Kind::ParticipantReceivedBeat, id, msg_id);
  }
  if (p_status_[idx] == Status::Active && msg->sender == 0 && flag) {
    if (!p_joined_.test(idx)) {
      p_joined_.set(idx);
      p_next_join_[idx] = kNever;
    }
    if (p_leave_requested_.test(idx) &&
        proto::variant_leaves(config_.protocol.variant)) {
      p_status_[idx] = Status::Left;
      p_left_at_[idx] = now_;
      const std::uint64_t out = send(id, 0, false);
      ++scale_stats_.replies;
      emit(ProtocolEvent::Kind::ParticipantLeft, id, out, 1);
    } else {
      p_deadline_[idx] = now_ + config_.protocol.participant_deadline();
      const std::uint64_t out = send(id, 0, true);
      ++scale_stats_.replies;
      emit(ProtocolEvent::Kind::ParticipantReplied, id, out, 1);
    }
  }
  arm_node_timer(id);
}

void ScaleCluster::coordinator_elapsed() {
  coord_timer_ = Wheel::Handle{};
  if (coord_status_ == Status::Active && started_ &&
      now_ >= round_deadline_) {
    close_round();
  }
  arm_node_timer(0);
}

void ScaleCluster::close_round() {
  // One struct-of-arrays pass over the member table: step every joined
  // member down the waiting-time ladder (reset on a received beat,
  // accelerate on a miss) and track the round minimum.
  const Variant variant = config_.protocol.variant;
  sim::Time min_t = config_.protocol.tmax;
  for (std::size_t wi = 0; wi < joined_.word_count(); ++wi) {
    std::uint64_t w = joined_.word(wi);
    while (w != 0) {
      const auto idx =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      tm_[idx] =
          proto::next_wait(rcvd_.test(idx), tm_[idx], timing_, variant);
      min_t = std::min(min_t, tm_[idx]);
    }
  }
  rcvd_.clear_all();  // batched: one word pass instead of n map writes

  if (proto::wait_inactivates(min_t, timing_)) {
    coord_status_ = Status::InactiveNonVoluntarily;
    coord_inactivated_at_ = now_;
    emit(ProtocolEvent::Kind::CoordinatorInactivated, 0);
    return;
  }

  t_ = min_t;
  round_deadline_ = now_ + t_;
  ++scale_stats_.rounds;
  // Batched beat generation: the whole round fans out in one pass over
  // the joined bitset, ids consecutive in ascending member order.
  std::uint64_t beat_id = 0;
  std::uint32_t fanout = 0;
  for (std::size_t wi = 0; wi < joined_.word_count(); ++wi) {
    std::uint64_t w = joined_.word(wi);
    while (w != 0) {
      const auto idx =
          (wi << 6) + static_cast<std::size_t>(std::countr_zero(w));
      w &= w - 1;
      const std::uint64_t id = send(0, static_cast<int>(idx), true);
      if (beat_id == 0) beat_id = id;
      ++fanout;
    }
  }
  scale_stats_.beats += fanout;
  emit(ProtocolEvent::Kind::CoordinatorBeat, 0, beat_id, fanout);
}

void ScaleCluster::participant_elapsed(int id) {
  const auto idx = static_cast<std::size_t>(id);
  p_timer_[idx] = Wheel::Handle{};
  if (p_status_[idx] == Status::Active && started_) {
    if (now_ >= p_deadline_[idx]) {
      p_status_[idx] = Status::InactiveNonVoluntarily;
      p_inactivated_at_[idx] = now_;
      emit(ProtocolEvent::Kind::ParticipantInactivated, id);
    } else if (!p_joined_.test(idx) && now_ >= p_next_join_[idx]) {
      p_next_join_[idx] = now_ + proto::join_beat_period(timing_);
      const std::uint64_t out = send(id, 0, true);
      ++scale_stats_.replies;
      emit(ProtocolEvent::Kind::ParticipantJoinBeat, id, out, 1);
    }
  }
  arm_node_timer(id);
}

sim::Time ScaleCluster::node_next_event(int id) const {
  if (id == 0) {
    if (coord_status_ != Status::Active || !started_) return kNever;
    return round_deadline_;
  }
  const auto idx = static_cast<std::size_t>(id);
  if (p_status_[idx] != Status::Active || !started_) return kNever;
  return std::min(p_deadline_[idx], p_next_join_[idx]);
}

void ScaleCluster::arm_node_timer(int id) {
  Wheel::Handle& handle =
      id == 0 ? coord_timer_ : p_timer_[static_cast<std::size_t>(id)];
  wheel_.cancel(handle);
  handle = Wheel::Handle{};
  const sim::Time when = node_next_event(id);
  if (when == kNever) return;
  handle = wheel_.arm(std::max(when, now_), timer_priority_,
                      Ev{Ev::Kind::NodeTimer, true, 0, id, 0});
}

void ScaleCluster::emit(ProtocolEvent::Kind kind, int node,
                        std::uint64_t msg_id, std::uint32_t fanout) {
  if (sinks_.wants(kind)) {
    sinks_.emit(ProtocolEvent{kind, now_, node, msg_id, fanout});
  }
}

}  // namespace ahb::hb
