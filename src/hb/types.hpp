// Common types of the accelerated heartbeat protocol library.
//
// The library is sans-I/O: Coordinator and Participant are reactive
// state machines driven by a host (the bundled simulator, or any real
// event loop) through on_message/on_elapsed calls; they emit messages
// and status changes as values instead of performing I/O.
//
// All protocol semantics — the variant taxonomy, the acceleration law,
// and every timeout bound — come from the shared kernel in `src/proto`,
// which the timed-automata models consume too.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "proto/rules.hpp"
#include "proto/timing.hpp"

namespace ahb::hb {

using Time = proto::Time;

/// Sentinel for "no pending event".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Protocol variants of Gouda & McGuire (ICDCS'98) plus the revised
/// binary start-up of McGuire & Gouda (2004). Shared with the
/// timed-automata layer (`models::Flavor` is the same type).
using Variant = proto::Variant;

using proto::to_string;
using proto::variant_joins;

struct Config {
  Time tmin = 1;   ///< minimum waiting time; also the round-trip delay bound
  Time tmax = 10;  ///< maximum waiting time
  Variant variant = Variant::Binary;
  /// Use the corrected inactivation bounds from the formal analysis
  /// (Section 6.2) instead of the published ones; see proto/timing.hpp
  /// for both formulas.
  bool fixed_bounds = false;

  constexpr proto::Timing timing() const { return proto::Timing{tmin, tmax}; }

  constexpr bool valid() const { return timing().valid(); }

  constexpr Time participant_deadline() const {
    return proto::participant_deadline(timing(), fixed_bounds);
  }
  constexpr Time join_deadline() const {
    return proto::join_deadline(timing(), fixed_bounds);
  }
  /// The bound within which p[0] is guaranteed to self-inactivate after
  /// its last received beat (the corrected R1 bound of the analysis).
  constexpr Time coordinator_detection_bound() const {
    return proto::coordinator_detection_bound(timing());
  }
};

/// Heartbeat wire format. `flag` matters only for the dynamic variant:
/// true means join/stay, false means leave (participant to coordinator)
/// or leave-acknowledgement (coordinator to participant).
struct Message {
  int sender = 0;  ///< 0 is the coordinator, participants are > 0
  bool flag = true;
};

struct Outbound {
  int to = 0;
  Message message;
};

/// Result of feeding an event into a protocol state machine.
struct Actions {
  std::vector<Outbound> messages;
  bool inactivated = false;  ///< the machine just became non-voluntarily inactive
  /// Coordinator only: this on_elapsed call closed a heartbeat round
  /// and the coordinator stayed active (it broadcast to the joined
  /// members — possibly none). Observed by the conformance recorder.
  bool round_completed = false;
};

enum class Status {
  Active,
  Left,                    ///< departed gracefully (dynamic variant)
  CrashedVoluntarily,      ///< host-injected crash
  InactiveNonVoluntarily,  ///< protocol-decided inactivation
};

const char* to_string(Status s);

}  // namespace ahb::hb
