// Common types of the accelerated heartbeat protocol library.
//
// The library is sans-I/O: Coordinator and Participant are reactive
// state machines driven by a host (the bundled simulator, or any real
// event loop) through on_message/on_elapsed calls; they emit messages
// and status changes as values instead of performing I/O.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace ahb::hb {

using Time = std::int64_t;

/// Sentinel for "no pending event".
inline constexpr Time kNever = std::numeric_limits<Time>::max();

/// Protocol variants of Gouda & McGuire (ICDCS'98) plus the revised
/// binary start-up of McGuire & Gouda (2004).
enum class Variant {
  Binary,         ///< two processes, halving acceleration
  RevisedBinary,  ///< binary, but p[0] beats immediately at start-up
  TwoPhase,       ///< on a miss the waiting time drops straight to tmin
  Static,         ///< fixed set of n participants, broadcast beats
  Expanding,      ///< participants may join during execution
  Dynamic,        ///< participants may join and (gracefully) leave
};

const char* to_string(Variant v);

constexpr bool variant_joins(Variant v) {
  return v == Variant::Expanding || v == Variant::Dynamic;
}

struct Config {
  Time tmin = 1;   ///< minimum waiting time; also the round-trip delay bound
  Time tmax = 10;  ///< maximum waiting time
  Variant variant = Variant::Binary;
  /// Use the corrected inactivation bounds from the formal analysis:
  /// participants time out after 2*tmax (joined) / 2*tmax + tmin (join
  /// phase) instead of 3*tmax - tmin.
  bool fixed_bounds = false;

  constexpr bool valid() const { return 0 < tmin && tmin <= tmax; }

  constexpr Time participant_deadline() const {
    return fixed_bounds ? 2 * tmax : 3 * tmax - tmin;
  }
  constexpr Time join_deadline() const {
    return fixed_bounds ? 2 * tmax + tmin : 3 * tmax - tmin;
  }
  /// The bound within which p[0] is guaranteed to self-inactivate after
  /// its last received beat (the corrected R1 bound of the analysis).
  constexpr Time coordinator_detection_bound() const {
    return 2 * tmin > tmax ? 2 * tmax : 3 * tmax - tmin;
  }
};

/// Heartbeat wire format. `flag` matters only for the dynamic variant:
/// true means join/stay, false means leave (participant to coordinator)
/// or leave-acknowledgement (coordinator to participant).
struct Message {
  int sender = 0;  ///< 0 is the coordinator, participants are > 0
  bool flag = true;
};

struct Outbound {
  int to = 0;
  Message message;
};

/// Result of feeding an event into a protocol state machine.
struct Actions {
  std::vector<Outbound> messages;
  bool inactivated = false;  ///< the machine just became non-voluntarily inactive
};

enum class Status {
  Active,
  Left,                    ///< departed gracefully (dynamic variant)
  CrashedVoluntarily,      ///< host-injected crash
  InactiveNonVoluntarily,  ///< protocol-decided inactivation
};

const char* to_string(Status s);

}  // namespace ahb::hb
