#include "hb/coordinator.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ahb::hb {

Coordinator::Coordinator(const Config& config, std::vector<int> members)
    : config_(config), t_(config.tmax) {
  AHB_EXPECTS(config.valid());
  AHB_EXPECTS(!variant_joins(config.variant) || members.empty());
  AHB_EXPECTS(variant_joins(config.variant) || !members.empty());
  for (const int id : members) {
    AHB_EXPECTS(id > 0);
    // A-priori members start as joined with a granted first round
    // (mirrors the rcvd-initially-true initialisation of the protocol).
    members_[id] = Member{.joined = true, .rcvd = true, .tm = config.tmax};
  }
}

Actions Coordinator::start(Time now) {
  AHB_EXPECTS(!started_);
  started_ = true;
  deadline_ = now + config_.tmax;
  Actions actions;
  if (proto::rules_for(config_.variant).initial_beat) {
    for (auto& [id, member] : members_) {
      member.rcvd = false;
      actions.messages.push_back(Outbound{id, Message{0, true}});
    }
  }
  return actions;
}

Actions Coordinator::on_elapsed(Time now) {
  Actions actions;
  if (status_ != Status::Active || !started_) return actions;
  if (now < deadline_) return actions;  // stale host timer

  // Close the round: step every member down the waiting-time ladder
  // (the shared law in proto/timing.hpp — reset on a received beat,
  // accelerate on a miss).
  Time min_t = config_.tmax;
  for (auto& [id, member] : members_) {
    if (!member.joined) continue;
    member.tm =
        proto::next_wait(member.rcvd, member.tm, config_.timing(),
                         config_.variant);
    member.rcvd = false;
    min_t = std::min(min_t, member.tm);
  }

  if (proto::wait_inactivates(min_t, config_.timing())) {
    status_ = Status::InactiveNonVoluntarily;
    inactivated_at_ = now;
    actions.inactivated = true;
    return actions;
  }

  t_ = min_t;
  deadline_ = now + t_;
  actions.round_completed = true;
  for (const auto& [id, member] : members_) {
    if (!member.joined) continue;
    actions.messages.push_back(Outbound{id, Message{0, true}});
  }
  return actions;
}

Actions Coordinator::on_message(Time now, const Message& message) {
  (void)now;
  Actions actions;
  // Crashed/inactive processes still receive messages but never react.
  if (status_ != Status::Active) return actions;
  if (message.sender <= 0) return actions;

  if (message.flag) {
    if (!variant_joins(config_.variant) &&
        !members_.contains(message.sender)) {
      return actions;  // unknown sender in a fixed-membership variant
    }
    auto& member = members_[message.sender];
    if (!member.joined) {
      member.joined = true;
      member.tm = config_.tmax;
    }
    member.rcvd = true;
  } else if (proto::variant_leaves(config_.variant)) {
    const auto it = members_.find(message.sender);
    if (it != members_.end()) {
      it->second.joined = false;
      it->second.rcvd = false;
      // Acknowledge the departure with a false-flag beat.
      actions.messages.push_back(
          Outbound{message.sender, Message{0, false}});
    }
  }
  return actions;
}

void Coordinator::crash(Time now) {
  (void)now;
  if (status_ == Status::Active) status_ = Status::CrashedVoluntarily;
}

Actions Coordinator::fence(Time now) {
  Actions actions;
  if (status_ != Status::Active) return actions;
  status_ = Status::InactiveNonVoluntarily;
  inactivated_at_ = now;
  actions.inactivated = true;
  return actions;
}

Time Coordinator::next_event_time() const {
  if (status_ != Status::Active || !started_) return kNever;
  return deadline_;
}

bool Coordinator::is_member(int id) const {
  const auto it = members_.find(id);
  return it != members_.end() && it->second.joined;
}

Time Coordinator::member_wait(int id) const {
  const auto it = members_.find(id);
  if (it == members_.end() || !it->second.joined) return config_.tmax;
  return it->second.tm;
}

std::vector<int> Coordinator::member_ids() const {
  std::vector<int> ids;
  for (const auto& [id, member] : members_) {
    if (member.joined) ids.push_back(id);
  }
  return ids;
}

}  // namespace ahb::hb
