// Coordinator (process p[0]) of the accelerated heartbeat protocols.
//
// Round structure (Section 2 of the protocol): wait t, beat every
// participant, and per participant set its waiting time back to tmax if
// its beat arrived during the round, otherwise accelerate (halve it, or
// drop to tmin in the two-phase variant). When the minimum waiting time
// falls below tmin the coordinator inactivates itself, guaranteeing
// network-wide deactivation after a crash.
#pragma once

#include <map>

#include "hb/types.hpp"

namespace ahb::hb {

class Coordinator {
 public:
  /// `members` is the a-priori participant set (binary: {1}; static:
  /// {1..n}); it must be empty for the expanding/dynamic variants, whose
  /// members join by beating.
  Coordinator(const Config& config, std::vector<int> members);

  /// Must be called once; returns the initial beat for the revised
  /// binary variant and arms the first round.
  Actions start(Time now);

  /// Host callback when now >= next_event_time().
  Actions on_elapsed(Time now);

  /// Host callback for every received message.
  Actions on_message(Time now, const Message& message);

  /// Host-injected voluntary crash.
  void crash(Time now);

  /// Fail-safe stop on detected local-clock corruption: the process
  /// must never act on invalid time arithmetic, so it forces its own
  /// non-voluntary inactivation instead (`now` is the last trusted
  /// local time). Idempotent; a no-op unless Active.
  Actions fence(Time now);

  Status status() const { return status_; }
  Time next_event_time() const;
  /// Time of non-voluntary self-inactivation, or kNever.
  Time inactivated_at() const { return inactivated_at_; }

  Time current_wait() const { return t_; }
  bool is_member(int id) const;
  std::vector<int> member_ids() const;
  /// Per-member waiting time tm[id]; tmax for unknown/departed members.
  /// Each halving below tmax corresponds to one missed round.
  Time member_wait(int id) const;
  const Config& config() const { return config_; }

 private:
  struct Member {
    bool joined = false;
    bool rcvd = false;
    Time tm = 0;
  };

  Config config_;
  Status status_ = Status::Active;
  std::map<int, Member> members_;
  Time t_;               ///< current round length
  Time deadline_ = 0;    ///< absolute end of the current round
  Time inactivated_at_ = kNever;
  bool started_ = false;
};

}  // namespace ahb::hb
