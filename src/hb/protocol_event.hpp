// ProtocolEvent: one protocol-level event of a cluster execution, as
// observed at the simulator boundary. The stream of these events is a
// cluster's timed trace; both heartbeat engines (hb/cluster.hpp and
// hb/cluster_scale.hpp) emit the identical stream, the conformance
// layer (proto/conformance.hpp) replays it through the timed-automata
// models, and the runtime-verification sinks (src/rv) check it online.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"

namespace ahb::hb {

struct ProtocolEvent {
  enum class Kind {
    CoordinatorBeat,          ///< p[0] beat its members (round or initial beat)
    CoordinatorReceivedBeat,  ///< a reply/join beat reached p[0] (node = sender)
    CoordinatorReceivedLeave, ///< a leave beat reached p[0] (node = sender)
    CoordinatorInactivated,   ///< p[0] NV-inactivated
    CoordinatorCrashed,       ///< injected p[0] crash took effect
    ParticipantReceivedBeat,  ///< p[0]'s beat reached p[node]
    ParticipantReplied,       ///< p[node] echoed a beat
    ParticipantJoinBeat,      ///< p[node] sent a join-phase beat
    ParticipantLeft,          ///< p[node] replied with a leave beat
    ParticipantInactivated,   ///< p[node] NV-inactivated
    ParticipantCrashed,       ///< injected p[node] crash took effect
    ParticipantRejoined,      ///< p[node] re-entered the join phase
  };
  /// One past the last enumerator — the width of a per-kind bitmask.
  static constexpr int kKindCount =
      static_cast<int>(Kind::ParticipantRejoined) + 1;

  Kind kind{};
  sim::Time at = 0;
  int node = 0;  ///< participant id; sender id for CoordinatorReceived*
  /// Network message id for send/delivery events (0 = not tied to one
  /// message). Sends and deliveries of the same message share the id,
  /// so the two become separately identifiable trace events. A
  /// CoordinatorBeat fans out as one message per member but is one
  /// protocol event; it carries the id of the first beat of the round
  /// (ids of the fan-out are consecutive).
  std::uint64_t msg_id = 0;
  /// Number of network messages the event fanned out as: the member
  /// count for a CoordinatorBeat (ids [msg_id, msg_id + fanout)), 1 for
  /// participant sends, 0 for events not tied to a send.
  std::uint32_t fanout = 0;
};

}  // namespace ahb::hb
