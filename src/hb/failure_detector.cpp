#include "hb/failure_detector.hpp"

#include "util/contracts.hpp"

namespace ahb::hb {

FailureDetector::FailureDetector(const Config& config,
                                 std::vector<int> members,
                                 int suspect_after_misses)
    : coordinator_(config, std::move(members)),
      suspect_after_misses_(suspect_after_misses) {
  AHB_EXPECTS(suspect_after_misses >= 1);
  // The suspicion gradient comes from the halving ladder; the two-phase
  // variant jumps straight to tmin and offers no gradient.
  AHB_EXPECTS(!proto::rules_for(config.variant).two_phase);
}

int FailureDetector::missed_rounds(int id) const {
  const Time tmax = coordinator_.config().tmax;
  const Time wait = coordinator_.member_wait(id);
  int misses = 0;
  for (Time w = tmax; w > wait && w > 0; w /= 2) ++misses;
  return misses;
}

bool FailureDetector::suspects(int id) const {
  if (down()) return true;
  if (!coordinator_.is_member(id)) return false;
  return missed_rounds(id) >= suspect_after_misses_;
}

std::vector<int> FailureDetector::suspected() const {
  std::vector<int> out;
  for (const int id : coordinator_.member_ids()) {
    if (suspects(id)) out.push_back(id);
  }
  return out;
}

}  // namespace ahb::hb
