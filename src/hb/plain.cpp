#include "hb/plain.hpp"

#include "util/contracts.hpp"

namespace ahb::hb {

PlainSender::PlainSender(int id, Time period) : id_(id), period_(period) {
  AHB_EXPECTS(period > 0);
}

Actions PlainSender::start(Time now) {
  AHB_EXPECTS(!started_);
  started_ = true;
  next_beat_ = now + period_;
  Actions actions;
  actions.messages.push_back(Outbound{0, Message{id_, true}});
  return actions;
}

Actions PlainSender::on_elapsed(Time now) {
  Actions actions;
  if (status_ != Status::Active || !started_) return actions;
  if (now < next_beat_) return actions;
  next_beat_ = now + period_;
  actions.messages.push_back(Outbound{0, Message{id_, true}});
  return actions;
}

void PlainSender::crash(Time now) {
  (void)now;
  if (status_ == Status::Active) status_ = Status::CrashedVoluntarily;
}

Time PlainSender::next_event_time() const {
  if (status_ != Status::Active || !started_) return kNever;
  return next_beat_;
}

PlainDetector::PlainDetector(Time period, int miss_threshold)
    : timeout_(period * miss_threshold) {
  AHB_EXPECTS(period > 0);
  AHB_EXPECTS(miss_threshold > 0);
}

void PlainDetector::start(Time now) {
  AHB_EXPECTS(!started_);
  started_ = true;
  deadline_ = now + timeout_;
}

Actions PlainDetector::on_elapsed(Time now) {
  Actions actions;
  if (!started_ || suspected_) return actions;
  if (now >= deadline_) {
    suspected_ = true;
    suspected_at_ = now;
    actions.inactivated = true;
  }
  return actions;
}

Actions PlainDetector::on_message(Time now, const Message& message) {
  (void)message;
  Actions actions;
  if (!started_ || suspected_) return actions;
  deadline_ = now + timeout_;
  return actions;
}

Time PlainDetector::next_event_time() const {
  if (!started_ || suspected_) return kNever;
  return deadline_;
}

}  // namespace ahb::hb
