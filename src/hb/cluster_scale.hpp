// ScaleCluster: the massive-cluster heartbeat engine.
//
// Same protocol, different mechanics. hb::Cluster simulates a handful
// of nodes with one heap-allocated Coordinator/Participant object per
// process, std::map-routed message delivery and a binary-heap simulator
// whose every timer rearm is O(log n) — fine for conformance work,
// hopeless for a coordinator watching 100k members. ScaleCluster keeps
// the protocol state in struct-of-arrays form (status, deadline,
// next-join, waiting-time ladders as parallel flat vectors indexed by
// dense node id; joined/received/leave-requested as word-packed
// bitsets), arms every deadline on a hierarchical timer wheel
// (sim/timer_wheel.hpp, O(1) arm/cancel/rearm), and runs beats through
// an inlined flat transport with no per-message heap allocation: a
// round boundary is one pass over the member table that fans out every
// beat of the round.
//
// Equivalence contract: for the same ClusterConfig and the same
// injected fault schedule, ScaleCluster consumes the seeded RNG stream
// in exactly the legacy order (loss draw, then delay draw, per send)
// and schedules work in exactly the legacy (time, priority,
// schedule-order) sequence, so its ProtocolEvent stream — kinds, times,
// node ids, message ids, fan-outs — is bit-for-bit identical to
// hb::Cluster's. tests/hb_scale_equivalence_test.cpp pins this on all
// six variants; the conformance replayer accepts its traces unchanged,
// which is what makes the fast engine provably the same protocol.
//
// Deliberately unsupported (use hb::Cluster, which stays the chaos and
// small-n harness): clock drift, per-link parameter overrides, link
// up/down faults, burst loss, duplication. Channel events (Sent, Lost,
// Delivered, Corrupted, Rejected) are tapped inline in the flat
// transport and fanned out through the sink chain when some sink
// subscribes; Delivered events report delay 0 because the flat
// transport does not carry the sampled delay to the delivery
// (Blocked/Duplicated never occur here).
//
// Like the legacy engine the flat transport carries validated 8-byte
// wire images (hb/wire.hpp): ClusterConfig::corrupt_probability arms
// uniform payload corruption with the same per-send draw order as
// sim::Network (loss, corruption chance + bit index, delay), so the
// equivalence contract extends to corrupted runs. Clock faults
// (corrupt_clock_at / wrap_clock_at) are emulated on the SoA deadline
// table with the same externally observable reactions as hb::Cluster's
// modular-clock reconstruction — fail-safe fence on an invalid age,
// conservative timeout on a forward jump, silent stall in the
// guard-off wrap control — but event streams under *clock* faults are
// behaviourally, not bit-for-bit, matched across engines.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hb/cluster.hpp"
#include "sim/network.hpp"
#include "sim/timer_wheel.hpp"
#include "util/dense_bitset.hpp"
#include "util/rng.hpp"

namespace ahb::hb {

/// Aggregate throughput counters of one ScaleCluster run.
struct ScaleStats {
  std::uint64_t rounds = 0;  ///< coordinator rounds closed (incl. empty ones)
  std::uint64_t beats = 0;   ///< coordinator -> member beat messages sent
  std::uint64_t replies = 0; ///< participant -> coordinator beats (echo/join/leave)
};

class ScaleCluster {
 public:
  explicit ScaleCluster(const ClusterConfig& config);

  /// Starts all processes at the current simulation time.
  void start();

  void run_until(sim::Time horizon);

  // Fault/behaviour injection (scheduled at absolute times), mirroring
  // hb::Cluster's API and semantics.
  void crash_coordinator_at(sim::Time when);
  void crash_participant_at(int id, sim::Time when);
  void leave_at(int id, sim::Time when);
  void rejoin_at(int id, sim::Time when);
  /// Clock corruption/wrap, mirroring hb::Cluster's semantics (see its
  /// declarations); emulated on the flat deadline table.
  void corrupt_clock_at(int id, sim::Time when, std::int64_t delta);
  void wrap_clock_at(int id, sim::Time when, std::uint64_t margin);

  /// Registers a runtime-verification sink (not owned; must outlive the
  /// cluster). Install before start(). Event construction is gated on
  /// the chain's cached interest masks, so the 100k-node hot path never
  /// pays for observability nothing subscribed to. run_until does not
  /// call finish on the sinks — drive `sinks().finish(horizon)` when
  /// the run ends.
  void add_sink(rv::EventSink* sink) { sinks_.add(sink); }
  /// Deregisters a sink mid-run (between run_until calls), so it can be
  /// destroyed before the cluster without leaving a dangling pointer in
  /// the chain.
  void remove_sink(rv::EventSink* sink) { sinks_.remove(sink); }
  rv::SinkChain& sinks() { return sinks_; }

  // Legacy lambda observers, the same thin adapter over the sink chain
  // as hb::Cluster's (the duplicated per-engine callback bookkeeping
  // lives once in rv::CallbackSink now).

  /// Observer over every protocol-level event. Install before start().
  void on_protocol_event(std::function<void(const ProtocolEvent&)> cb) {
    legacy_.set_protocol(std::move(cb));
    sinks_.refresh();
  }

  /// Observer over every non-voluntary inactivation (node id, time).
  void on_inactivation(std::function<void(int, sim::Time)> cb) {
    legacy_.set_inactivation(std::move(cb));
    sinks_.refresh();
  }

  /// Observer over the flat transport's channel events (see the header
  /// comment for the tap's semantics).
  void on_channel_event(std::function<void(const sim::ChannelEvent&)> cb) {
    legacy_.set_channel(std::move(cb));
    sinks_.refresh();
  }

  const ClusterConfig& config() const { return config_; }
  int participant_count() const { return participants_; }
  sim::Time now() const { return now_; }

  Status coordinator_status() const { return coord_status_; }
  sim::Time coordinator_inactivated_at() const { return coord_inactivated_at_; }
  /// Current round length t of the coordinator.
  sim::Time coordinator_wait() const { return t_; }
  /// Number of currently joined members.
  int member_count() const { return static_cast<int>(joined_.count()); }
  bool is_member(int id) const;

  Status participant_status(int id) const;
  sim::Time participant_inactivated_at(int id) const;
  bool participant_joined(int id) const;

  /// True iff every process has stopped participating.
  bool all_inactive() const;

  const sim::NetworkStats& network_stats() const { return net_stats_; }
  const ScaleStats& stats() const { return scale_stats_; }

 private:
  /// Wheel payload: one pending simulation event, by value (pooled in
  /// the wheel's node arena — no per-message allocation).
  struct Ev {
    enum class Kind : std::uint8_t {
      Deliver,           ///< message delivery: from -> node
      NodeTimer,         ///< node's deadline timer (0 = coordinator)
      CrashCoordinator,
      CrashParticipant,
      Leave,
      Rejoin,
      ClockOffset,       ///< node's register jumps by (int64)wire
      ClockWrap,         ///< node's register repositioned `wire` before 2^64
      ClockWrapCross,    ///< guard-off wrap crossing (internal)
    };
    Kind kind{};
    bool flag = true;
    std::int32_t from = 0;
    std::int32_t node = 0;
    std::uint64_t msg_id = 0;
    std::uint64_t wire = 0;  ///< Deliver: wire image; Clock*: operand
  };
  using Wheel = sim::TimerWheel<Ev>;

  void handle(const Ev& ev);
  void deliver_to_coordinator(int from, std::uint64_t wire, std::uint64_t id);
  void deliver_to_participant(int id, int from, std::uint64_t wire,
                              std::uint64_t id_);
  void coordinator_elapsed();
  void participant_elapsed(int id);
  void close_round();
  /// Parse-or-drop boundary validation of a delivered wire image.
  std::optional<Message> decode_wire(int from, const WireMessage& wire) const;
  void apply_clock_offset(int node, std::int64_t delta);
  void apply_wrap_cross(int node);
  /// Fail-safe reaction to an invalid clock age: fence the node.
  void fence_node(int node);

  /// Sends one beat: assigns the next message id, applies the loss and
  /// delay draws in exactly the legacy per-send order, and arms the
  /// delivery on the wheel. Returns the assigned id.
  std::uint64_t send(int from, int to, bool flag);

  /// Cancels and re-arms node `id`'s deadline timer at its next event
  /// time — called wherever the legacy harness calls arm_timer so timer
  /// sequence numbers (the same-instant tiebreaker) allocate in the
  /// same order.
  void arm_node_timer(int id);
  sim::Time node_next_event(int id) const;
  void emit(ProtocolEvent::Kind kind, int node, std::uint64_t msg_id = 0,
            std::uint32_t fanout = 0);
  void track_delivery(std::vector<std::uint64_t>& newest, int index,
                      std::uint64_t id);

  ClusterConfig config_;
  int participants_;
  proto::Timing timing_;
  int timer_priority_;

  Wheel wheel_;
  Rng rng_;
  sim::Time now_ = 0;
  bool started_ = false;

  // Flat transport (homogeneous links).
  double loss_probability_;
  double corrupt_probability_;
  sim::Time min_delay_;
  sim::Time delay_span_;  ///< max_delay - min_delay
  sim::Time spec_max_delay_;
  std::uint64_t next_msg_id_ = 1;
  sim::NetworkStats net_stats_;
  ScaleStats scale_stats_;
  /// Per-link newest-delivered ids for the reordering counter: the
  /// topology is a star, so one entry per participant per direction.
  std::vector<std::uint64_t> newest_to_coord_;
  std::vector<std::uint64_t> newest_from_coord_;

  // Coordinator: struct-of-arrays member table indexed by node id.
  Status coord_status_ = Status::Active;
  sim::Time t_;               ///< current round length
  sim::Time round_deadline_ = 0;
  sim::Time coord_inactivated_at_ = kNever;
  DenseBitset joined_;      ///< member currently registered and joined
  DenseBitset rcvd_;        ///< beat received in the current round
  DenseBitset registered_;  ///< ever registered (the legacy map's key set)
  std::vector<sim::Time> tm_;  ///< per-member waiting-time ladder
  Wheel::Handle coord_timer_;

  // Participants: parallel flat vectors indexed by node id (slot 0 unused).
  std::vector<Status> p_status_;
  DenseBitset p_joined_;
  DenseBitset p_leave_requested_;
  std::vector<sim::Time> p_deadline_;
  std::vector<sim::Time> p_next_join_;
  std::vector<sim::Time> p_inactivated_at_;
  std::vector<sim::Time> p_left_at_;
  std::vector<Wheel::Handle> p_timer_;

  rv::CallbackSink legacy_;  ///< adapter behind the lambda observer API
  rv::SinkChain sinks_;
};

}  // namespace ahb::hb
