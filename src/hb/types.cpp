#include "hb/types.hpp"

#include "util/contracts.hpp"

namespace ahb::hb {

const char* to_string(Status s) {
  switch (s) {
    case Status::Active: return "active";
    case Status::Left: return "left";
    case Status::CrashedVoluntarily: return "crashed";
    case Status::InactiveNonVoluntarily: return "inactive-nv";
  }
  AHB_UNREACHABLE("invalid Status");
}

}  // namespace ahb::hb
