#include "hb/types.hpp"

#include "util/contracts.hpp"

namespace ahb::hb {

const char* to_string(Variant v) {
  switch (v) {
    case Variant::Binary: return "binary";
    case Variant::RevisedBinary: return "revised-binary";
    case Variant::TwoPhase: return "two-phase";
    case Variant::Static: return "static";
    case Variant::Expanding: return "expanding";
    case Variant::Dynamic: return "dynamic";
  }
  AHB_UNREACHABLE("invalid Variant");
}

const char* to_string(Status s) {
  switch (s) {
    case Status::Active: return "active";
    case Status::Left: return "left";
    case Status::CrashedVoluntarily: return "crashed";
    case Status::InactiveNonVoluntarily: return "inactive-nv";
  }
  AHB_UNREACHABLE("invalid Status");
}

}  // namespace ahb::hb
