#include "hb/participant.hpp"

#include <algorithm>

#include "util/contracts.hpp"

namespace ahb::hb {

Participant::Participant(const Config& config, int id, bool starts_joined)
    : config_(config), id_(id), joined_(starts_joined) {
  AHB_EXPECTS(config.valid());
  AHB_EXPECTS(id > 0);
  AHB_EXPECTS(!starts_joined || !variant_joins(config.variant));
  AHB_EXPECTS(starts_joined || variant_joins(config.variant));
}

Actions Participant::start(Time now) {
  AHB_EXPECTS(!started_);
  started_ = true;
  Actions actions;
  if (joined_) {
    deadline_ = now + config_.participant_deadline();
  } else {
    // Join phase: beat every join period (tmin) until the coordinator's
    // heartbeat confirms the join. The first join beat goes out one
    // period after start-up, matching the verified model (Fig. 6).
    deadline_ = now + config_.join_deadline();
    next_join_ = now + proto::join_beat_period(config_.timing());
  }
  return actions;
}

Actions Participant::on_elapsed(Time now) {
  Actions actions;
  if (status_ != Status::Active || !started_) return actions;

  if (now >= deadline_) {
    status_ = Status::InactiveNonVoluntarily;
    inactivated_at_ = now;
    actions.inactivated = true;
    return actions;
  }
  if (!joined_ && now >= next_join_) {
    next_join_ = now + proto::join_beat_period(config_.timing());
    actions.messages.push_back(Outbound{0, Message{id_, true}});
  }
  return actions;
}

Actions Participant::on_message(Time now, const Message& message) {
  Actions actions;
  if (status_ != Status::Active) return actions;
  if (message.sender != 0) return actions;
  if (!message.flag) return actions;  // leave acknowledgement: ignore

  if (!joined_) {
    joined_ = true;
    next_join_ = kNever;
  }
  if (leave_requested_ && proto::variant_leaves(config_.variant)) {
    status_ = Status::Left;
    left_at_ = now;
    actions.messages.push_back(Outbound{0, Message{id_, false}});
    return actions;
  }
  deadline_ = now + config_.participant_deadline();
  actions.messages.push_back(Outbound{0, Message{id_, true}});
  return actions;
}

void Participant::crash(Time now) {
  (void)now;
  if (status_ == Status::Active) status_ = Status::CrashedVoluntarily;
}

Actions Participant::fence(Time now) {
  Actions actions;
  if (status_ != Status::Active) return actions;
  status_ = Status::InactiveNonVoluntarily;
  inactivated_at_ = now;
  actions.inactivated = true;
  return actions;
}

void Participant::request_leave() {
  AHB_EXPECTS(proto::variant_leaves(config_.variant));
  leave_requested_ = true;
}

Actions Participant::rejoin(Time now) {
  AHB_EXPECTS(proto::variant_leaves(config_.variant));
  AHB_EXPECTS(status_ == Status::Left);
  // Graceful rejoin only: the leave beat must have drained from the
  // network first (its delivery is bounded by tmin), otherwise a stale
  // leave processed after the new join de-registers the reincarnation
  // (hazard confirmed by model checking; see EXPERIMENTS.md).
  AHB_EXPECTS(now >= proto::earliest_rejoin(left_at_, config_.timing()));
  status_ = Status::Active;
  joined_ = false;
  leave_requested_ = false;
  deadline_ = now + config_.join_deadline();
  next_join_ = now + proto::join_beat_period(config_.timing());
  return Actions{};
}

Time Participant::next_event_time() const {
  if (status_ != Status::Active || !started_) return kNever;
  return std::min(deadline_, next_join_);
}

}  // namespace ahb::hb
