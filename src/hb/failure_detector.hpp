// Failure-detector facade over the accelerated heartbeat coordinator.
//
// The 1998 protocol is all-or-nothing: once the coordinator's waiting
// time drops below tmin it deactivates the whole network. Many systems
// instead want per-member suspicion ("is node 7 probably down?") long
// before that. The coordinator's acceleration state provides exactly
// that gradient for free: a member whose waiting time tm[i] has been
// halved k times has missed k consecutive rounds. This facade exposes
// it as an eventually-perfect-style suspect/trust interface, which is
// the building block the analysis names as its own follow-up work
// ("protocols for failure detectors").
#pragma once

#include "hb/coordinator.hpp"

namespace ahb::hb {

class FailureDetector {
 public:
  /// `suspect_after_misses`: how many consecutive missed rounds before a
  /// member is suspected (1 = aggressive, log2(tmax/tmin) = only just
  /// before the protocol would give the member up).
  FailureDetector(const Config& config, std::vector<int> members,
                  int suspect_after_misses = 2);

  // Sans-I/O driving interface, forwarded to the coordinator.
  Actions start(Time now) { return coordinator_.start(now); }
  Actions on_elapsed(Time now) { return coordinator_.on_elapsed(now); }
  Actions on_message(Time now, const Message& message) {
    return coordinator_.on_message(now, message);
  }
  Time next_event_time() const { return coordinator_.next_event_time(); }

  /// True iff `id` has missed at least the configured number of
  /// consecutive rounds (or the whole detector has deactivated).
  bool suspects(int id) const;

  /// Consecutive missed rounds of `id` (0 while healthy).
  int missed_rounds(int id) const;

  /// All currently suspected members.
  std::vector<int> suspected() const;

  /// The detector itself went down (coordinator deactivated): every
  /// member is then suspected.
  bool down() const {
    return coordinator_.status() != Status::Active;
  }

  Coordinator& coordinator() { return coordinator_; }
  const Coordinator& coordinator() const { return coordinator_; }

 private:
  Coordinator coordinator_;
  int suspect_after_misses_;
};

}  // namespace ahb::hb
