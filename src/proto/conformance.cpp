#include "proto/conformance.hpp"

#include "models/heartbeat_model.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace ahb::proto {

namespace {

using Kind = hb::ProtocolEvent::Kind;

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::CoordinatorBeat: return "CoordinatorBeat";
    case Kind::CoordinatorReceivedBeat: return "CoordinatorReceivedBeat";
    case Kind::CoordinatorReceivedLeave: return "CoordinatorReceivedLeave";
    case Kind::CoordinatorInactivated: return "CoordinatorInactivated";
    case Kind::CoordinatorCrashed: return "CoordinatorCrashed";
    case Kind::ParticipantReceivedBeat: return "ParticipantReceivedBeat";
    case Kind::ParticipantReplied: return "ParticipantReplied";
    case Kind::ParticipantJoinBeat: return "ParticipantJoinBeat";
    case Kind::ParticipantLeft: return "ParticipantLeft";
    case Kind::ParticipantInactivated: return "ParticipantInactivated";
    case Kind::ParticipantCrashed: return "ParticipantCrashed";
    case Kind::ParticipantRejoined: return "ParticipantRejoined";
  }
  return "?";
}

// Maps one recorded event to the model edge labels that may realize it.
// Matching is by substring of Network::label_of output, so every needle
// must be unambiguous across all label fragments (requires < 10
// participants: "p1." vs "p10.").
std::vector<std::string> needles_for(const hb::ProtocolEvent& e) {
  const int i = e.node;
  switch (e.kind) {
    case Kind::CoordinatorBeat:
      // One broadcast edge per round; binary flavors name it send_beat,
      // the revised binary's start-up beat is its own edge.
      return {"p0.send_beat", "p0.broadcast_beat", "p0.initial_beat"};
    case Kind::CoordinatorReceivedBeat:
      // Covers both the reply delivery (ch) and the join-beat delivery
      // (jch): both synchronize on the same p[0] receive edge.
      return {strprintf("p0.recv_beat_from_p%d", i)};
    case Kind::CoordinatorReceivedLeave:
      return {strprintf("p0.recv_leave_from_p%d", i)};
    case Kind::CoordinatorInactivated:
      return {"p0.nv_inactivate"};
    case Kind::CoordinatorCrashed:
      return {"p0.crash"};
    case Kind::ParticipantReceivedBeat:
      // recv_first_beat while still in the join phase, recv_beat after.
      return {strprintf("p%d.recv_beat", i),
              strprintf("p%d.recv_first_beat", i)};
    case Kind::ParticipantReplied:
      return {strprintf("p%d.send_reply", i)};
    case Kind::ParticipantJoinBeat:
      return {strprintf("p%d.join_beat", i)};
    case Kind::ParticipantLeft:
      return {strprintf("p%d.send_leave", i)};
    case Kind::ParticipantInactivated:
      // Substring also covers nv_inactivate_joining (join-phase NV).
      return {strprintf("p%d.nv_inactivate", i)};
    case Kind::ParticipantCrashed:
      // Substring also covers crash_joining.
      return {strprintf("p%d.crash", i)};
    case Kind::ParticipantRejoined:
      return {strprintf("p%d.rejoin", i)};
  }
  return {};
}

}  // namespace

models::BuildOptions model_options_for(const hb::ClusterConfig& config,
                                       models::BuildOptions::Rejoin rejoin) {
  models::BuildOptions options;
  options.timing = {static_cast<int>(config.protocol.tmin),
                    static_cast<int>(config.protocol.tmax)};
  options.participants = config.participants;
  options.receive_priority = config.receive_priority;
  options.corrected_bounds = config.protocol.fixed_bounds;
  options.rejoin = rejoin;
  return options;
}

std::vector<mc::GuidedObservation> to_observations(
    std::span<const hb::ProtocolEvent> events) {
  std::vector<mc::GuidedObservation> obs;
  obs.reserve(events.size());
  for (const auto& e : events) {
    AHB_EXPECTS(obs.empty() || obs.back().at <= e.at);
    obs.push_back(mc::GuidedObservation{
        e.at, needles_for(e),
        strprintf("%s(node=%d)", kind_name(e.kind), e.node)});
  }
  return obs;
}

bool is_observable_label(const std::string& label) {
  // Every fragment a recordable event can map to. Channel-side fragments
  // (accept_*/deliver_*/lose_*/abort_wait/void_join) and p[0]'s internal
  // timeout edge stay silent; note combined labels like
  // "ch1.deliver_beat >> p1.recv_beat" classify by their process-side
  // fragment.
  static constexpr const char* kObservable[] = {
      ".send_beat",  ".broadcast_beat", ".initial_beat", ".recv_beat",
      ".recv_first_beat", ".recv_leave", ".send_reply",  ".join_beat",
      ".send_leave", ".nv_inactivate",  ".crash",        ".rejoin",
  };
  for (const char* needle : kObservable) {
    if (label.find(needle) != std::string::npos) return true;
  }
  return false;
}

ReplayResult replay_through_model(models::Flavor flavor,
                                  const models::BuildOptions& options,
                                  std::span<const hb::ProtocolEvent> events,
                                  const mc::GuidedLimits& limits) {
  ReplayResult result;
  result.events = events.size();
  const auto model = models::HeartbeatModel::build(flavor, options);
  const auto obs = to_observations(events);
  const auto guided =
      mc::guided_replay(model.net(), obs, is_observable_label, limits);
  result.ok = guided.ok;
  result.matched = guided.matched;
  result.expanded = guided.expanded;
  result.diagnostic = guided.diagnostic;
  return result;
}

ReplayResult replay_cluster_trace(const hb::ClusterConfig& config,
                                  std::span<const hb::ProtocolEvent> events,
                                  models::BuildOptions::Rejoin rejoin,
                                  const mc::GuidedLimits& limits) {
  AHB_EXPECTS(config.participants >= 1 && config.participants < 10);
  AHB_EXPECTS(config.min_delay == 0 && config.max_delay == 0);
  return replay_through_model(config.protocol.variant,
                              model_options_for(config, rejoin), events,
                              limits);
}

}  // namespace ahb::proto
