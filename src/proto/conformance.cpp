#include "proto/conformance.hpp"

#include <algorithm>
#include <unordered_map>

#include "models/heartbeat_model.hpp"
#include "util/contracts.hpp"
#include "util/strings.hpp"

namespace ahb::proto {

namespace {

using Kind = hb::ProtocolEvent::Kind;
using Obs = mc::GuidedObservation;

const char* kind_name(Kind k) {
  switch (k) {
    case Kind::CoordinatorBeat: return "CoordinatorBeat";
    case Kind::CoordinatorReceivedBeat: return "CoordinatorReceivedBeat";
    case Kind::CoordinatorReceivedLeave: return "CoordinatorReceivedLeave";
    case Kind::CoordinatorInactivated: return "CoordinatorInactivated";
    case Kind::CoordinatorCrashed: return "CoordinatorCrashed";
    case Kind::ParticipantReceivedBeat: return "ParticipantReceivedBeat";
    case Kind::ParticipantReplied: return "ParticipantReplied";
    case Kind::ParticipantJoinBeat: return "ParticipantJoinBeat";
    case Kind::ParticipantLeft: return "ParticipantLeft";
    case Kind::ParticipantInactivated: return "ParticipantInactivated";
    case Kind::ParticipantCrashed: return "ParticipantCrashed";
    case Kind::ParticipantRejoined: return "ParticipantRejoined";
  }
  return "?";
}

bool is_send_kind(Kind k) {
  return k == Kind::CoordinatorBeat || k == Kind::ParticipantReplied ||
         k == Kind::ParticipantJoinBeat || k == Kind::ParticipantLeft;
}

bool is_delivery_kind(Kind k) {
  return k == Kind::CoordinatorReceivedBeat ||
         k == Kind::CoordinatorReceivedLeave ||
         k == Kind::ParticipantReceivedBeat;
}

/// The node at which an event takes place: the receiver for deliveries
/// (CoordinatorReceived* carry the *sender* in `node`), the acting node
/// otherwise.
int actor_of(const hb::ProtocolEvent& e) {
  switch (e.kind) {
    case Kind::CoordinatorReceivedBeat:
    case Kind::CoordinatorReceivedLeave: return 0;
    default: return e.node;
  }
}

// Maps one recorded event to the payload-level model edge labels that
// may realize it — the pre-identity matcher, still used for internal
// events (which carry no message) and for the PayloadOnly canary mode.
// Matching is by substring of Network::label_of output, so every needle
// must be unambiguous across all label fragments (requires < 10
// participants: "p1." vs "p10.").
std::vector<std::string> payload_needles_for(const hb::ProtocolEvent& e) {
  const int i = e.node;
  switch (e.kind) {
    case Kind::CoordinatorBeat:
      // One broadcast edge per round; binary flavors name it send_beat,
      // the revised binary's start-up beat is its own edge.
      return {"p0.send_beat", "p0.broadcast_beat", "p0.initial_beat"};
    case Kind::CoordinatorReceivedBeat:
      // Covers both the reply delivery (ch) and the join-beat delivery
      // (jch): payload-only matching cannot tell them apart.
      return {strprintf("p0.recv_beat_from_p%d", i),
              strprintf("p0.recv_join_from_p%d", i)};
    case Kind::CoordinatorReceivedLeave:
      return {strprintf("p0.recv_leave_from_p%d", i)};
    case Kind::CoordinatorInactivated:
      return {"p0.nv_inactivate"};
    case Kind::CoordinatorCrashed:
      return {"p0.crash"};
    case Kind::ParticipantReceivedBeat:
      // recv_first_beat while still in the join phase, recv_beat after.
      return {strprintf("p%d.recv_beat", i),
              strprintf("p%d.recv_first_beat", i)};
    case Kind::ParticipantReplied:
      return {strprintf("p%d.send_reply", i)};
    case Kind::ParticipantJoinBeat:
      return {strprintf("p%d.join_beat", i)};
    case Kind::ParticipantLeft:
      return {strprintf("p%d.send_leave", i)};
    case Kind::ParticipantInactivated:
      // Substring also covers nv_inactivate_joining (join-phase NV).
      return {strprintf("p%d.nv_inactivate", i)};
    case Kind::ParticipantCrashed:
      // Substring also covers crash_joining.
      return {strprintf("p%d.crash", i)};
    case Kind::ParticipantRejoined:
      return {strprintf("p%d.rejoin", i)};
  }
  return {};
}

Obs base_observation(const hb::ProtocolEvent& e) {
  Obs o;
  o.at = e.at;
  o.describe =
      e.msg_id != 0
          ? strprintf("%s(node=%d, id=%llu)", kind_name(e.kind), e.node,
                      static_cast<unsigned long long>(e.msg_id))
          : strprintf("%s(node=%d)", kind_name(e.kind), e.node);
  return o;
}

/// Builds the id-aware observation stream: sends and deliveries paired
/// by message id, duplicates folded onto their original, and loss edges
/// of messages with a recorded future delivery forbidden while in
/// flight. Join-beat deliveries translate like any other delivery —
/// the model's `deliver_join` is unguarded (a stale join re-registers
/// its sender, exactly as the engine coordinator does).
class IdObservationBuilder {
 public:
  explicit IdObservationBuilder(std::span<const hb::ProtocolEvent> events)
      : events_(events) {
    int max_node = 0;
    for (const auto& e : events) max_node = std::max(max_node, e.node);
    pending_.assign(static_cast<std::size_t>(max_node) + 1, Pending{});
  }

  std::vector<Obs> build() {
    for (const auto& e : events_) process(e);
    // The loss edge of a message the recorded future delivers may not
    // fire while that message is in flight — otherwise the model could
    // lose it and re-use a distinct same-payload message for the
    // upcoming delivery (the identical-payload conflation bug).
    for (const auto& w : windows_) {
      for (std::size_t k = w.send_obs + 1; k <= w.deliver_obs; ++k) {
        obs_[k].forbidden_silent.push_back(w.loss_label);
      }
    }
    return std::move(obs_);
  }

 private:
  enum class SendKind { Beat, Reply, JoinBeat, Leave };
  struct SendRec {
    SendKind kind{};
    int node = 0;
    std::size_t obs_index = 0;
  };
  /// A beat delivery whose same-instant response send has not been seen
  /// yet (the engine emits the response right after the delivery).
  struct Pending {
    std::uint64_t beat = 0;
    bool duplicate = false;
    sim::Time at = -1;
    bool valid = false;
  };
  struct Window {
    std::size_t send_obs = 0;
    std::size_t deliver_obs = 0;
    std::string loss_label;
  };

  std::uint64_t resolve(std::uint64_t id) const {
    const auto it = alias_.find(id);
    return it == alias_.end() ? id : it->second;
  }

  Pending take_pending(int node, sim::Time at) {
    auto& slot = pending_[static_cast<std::size_t>(node)];
    if (!slot.valid || slot.at != at) return Pending{};
    Pending out = slot;
    slot = Pending{};
    return out;
  }

  void note_window(std::uint64_t canonical, std::size_t deliver_obs,
                   std::string loss_label) {
    const auto it = sends_.find(canonical);
    if (it == sends_.end()) return;
    windows_.push_back(Window{it->second.obs_index, deliver_obs,
                              std::move(loss_label)});
  }

  void push_internal(const hb::ProtocolEvent& e) {
    Obs o = base_observation(e);
    o.any_of = payload_needles_for(e);
    obs_.push_back(std::move(o));
  }

  void process(const hb::ProtocolEvent& e) {
    switch (e.kind) {
      case Kind::CoordinatorBeat: {
        Obs o = base_observation(e);
        o.type = Obs::Type::Send;
        o.msg_id = e.msg_id;
        o.fanout = e.msg_id != 0 ? std::max<std::uint32_t>(e.fanout, 1) : 0;
        o.any_of = {"p0.send_beat", "p0.broadcast_beat", "p0.initial_beat"};
        // A model round must reach exactly as many channels as the
        // engine's fan-out (member-less rounds included: zero accepts).
        o.count_needle = ".accept_beat";
        o.expected_count = static_cast<int>(o.fanout);
        for (std::uint32_t f = 0; f < o.fanout; ++f) {
          sends_[e.msg_id + f] = SendRec{SendKind::Beat, 0, obs_.size()};
        }
        obs_.push_back(std::move(o));
        return;
      }
      case Kind::ParticipantReplied: {
        const Pending pend = take_pending(e.node, e.at);
        if (pend.valid && pend.duplicate) {
          const auto it = response_to_.find(pend.beat);
          if (it != response_to_.end()) {
            // Echo: the reply a duplicated beat delivery provoked. The
            // model saw one beat and one reply; fold the echo onto the
            // original so a delivery of either copy matches it.
            alias_[e.msg_id] = it->second;
            return;
          }
        }
        if (pend.valid) response_to_[pend.beat] = e.msg_id;
        sends_[e.msg_id] = SendRec{SendKind::Reply, e.node, obs_.size()};
        Obs o = base_observation(e);
        o.type = Obs::Type::Send;
        o.msg_id = e.msg_id;
        o.any_of = {strprintf("p%d.send_reply", e.node)};
        obs_.push_back(std::move(o));
        return;
      }
      case Kind::ParticipantJoinBeat: {
        sends_[e.msg_id] = SendRec{SendKind::JoinBeat, e.node, obs_.size()};
        Obs o = base_observation(e);
        o.type = Obs::Type::Send;
        o.msg_id = e.msg_id;
        o.any_of = {strprintf("p%d.join_beat", e.node)};
        obs_.push_back(std::move(o));
        return;
      }
      case Kind::ParticipantLeft: {
        (void)take_pending(e.node, e.at);
        sends_[e.msg_id] = SendRec{SendKind::Leave, e.node, obs_.size()};
        Obs o = base_observation(e);
        o.type = Obs::Type::Send;
        o.msg_id = e.msg_id;
        o.any_of = {strprintf("p%d.send_leave", e.node)};
        obs_.push_back(std::move(o));
        return;
      }
      case Kind::ParticipantReceivedBeat: {
        const bool first = delivered_[e.msg_id]++ == 0;
        pending_[static_cast<std::size_t>(e.node)] =
            Pending{e.msg_id, !first, e.at, true};
        if (!first) return;  // duplicate delivery: the model delivers once
        Obs o = base_observation(e);
        o.type = Obs::Type::Deliver;
        o.msg_id = sends_.count(e.msg_id) ? e.msg_id : 0;
        o.any_of = {strprintf("ch%d.deliver_beat", e.node)};
        if (o.msg_id != 0) {
          note_window(e.msg_id, obs_.size(),
                      strprintf("ch%d.lose_beat", e.node));
        }
        obs_.push_back(std::move(o));
        return;
      }
      case Kind::CoordinatorReceivedBeat: {
        const std::uint64_t c = resolve(e.msg_id);
        const auto it = sends_.find(c);
        if (it == sends_.end() || it->second.kind == SendKind::Beat ||
            it->second.kind == SendKind::Leave) {
          // Unknown origin: fall back to payload-level matching.
          push_internal(e);
          return;
        }
        const SendRec& s = it->second;
        const bool first = delivered_[c]++ == 0;
        if (!first) return;  // duplicate delivery
        Obs o = base_observation(e);
        o.type = Obs::Type::Deliver;
        o.msg_id = c;
        if (s.kind == SendKind::JoinBeat) {
          o.any_of = {strprintf("jch%d.deliver_join", s.node)};
          note_window(c, obs_.size(), strprintf("jch%d.lose_join", s.node));
        } else {
          o.any_of = {strprintf("ch%d.deliver_reply", s.node)};
          note_window(c, obs_.size(), strprintf("ch%d.lose_reply", s.node));
        }
        obs_.push_back(std::move(o));
        return;
      }
      case Kind::CoordinatorReceivedLeave: {
        const bool known = sends_.count(e.msg_id) != 0;
        const bool first = delivered_[e.msg_id]++ == 0;
        if (!first) return;  // duplicate delivery
        Obs o = base_observation(e);
        o.any_of = {strprintf("ch%d.deliver_leave", e.node)};
        if (known) {
          o.type = Obs::Type::Deliver;
          o.msg_id = e.msg_id;
          note_window(e.msg_id, obs_.size(),
                      strprintf("ch%d.lose_leave", e.node));
        }
        obs_.push_back(std::move(o));
        return;
      }
      case Kind::ParticipantRejoined:
      case Kind::ParticipantInactivated:
      case Kind::ParticipantCrashed:
        push_internal(e);
        return;
      case Kind::CoordinatorInactivated:
      case Kind::CoordinatorCrashed:
        push_internal(e);
        return;
    }
  }

  std::span<const hb::ProtocolEvent> events_;
  std::vector<Obs> obs_;
  std::unordered_map<std::uint64_t, SendRec> sends_;
  std::unordered_map<std::uint64_t, std::uint64_t> alias_;
  std::unordered_map<std::uint64_t, std::uint64_t> response_to_;
  std::unordered_map<std::uint64_t, int> delivered_;
  std::vector<Pending> pending_;  // index: node id
  std::vector<Window> windows_;
};

}  // namespace

models::BuildOptions model_options_for(const hb::ClusterConfig& config,
                                       models::BuildOptions::Rejoin rejoin) {
  models::BuildOptions options;
  options.timing = {static_cast<int>(config.protocol.tmin),
                    static_cast<int>(config.protocol.tmax)};
  options.participants = config.participants;
  options.receive_priority = config.receive_priority;
  options.corrected_bounds = config.protocol.fixed_bounds;
  options.rejoin = rejoin;
  return options;
}

std::vector<hb::ProtocolEvent> canonical_event_order(
    std::span<const hb::ProtocolEvent> events) {
  std::vector<hb::ProtocolEvent> out(events.begin(), events.end());
  // Which same-instant orders the recorder produces for *independent*
  // nodes is a simulator queue artifact; canonicalize by hopping each
  // send before other-node deliveries at the same timestamp. Same-node
  // order is causal (a delivery precedes the sends it provokes) and is
  // never disturbed; internal events act as barriers.
  for (std::size_t k = 1; k < out.size(); ++k) {
    if (!is_send_kind(out[k].kind)) continue;
    const sim::Time at = out[k].at;
    const int actor = actor_of(out[k]);
    std::size_t j = k;
    while (j > 0 && out[j - 1].at == at && is_delivery_kind(out[j - 1].kind) &&
           actor_of(out[j - 1]) != actor) {
      --j;
    }
    if (j < k) {
      std::rotate(out.begin() + static_cast<std::ptrdiff_t>(j),
                  out.begin() + static_cast<std::ptrdiff_t>(k),
                  out.begin() + static_cast<std::ptrdiff_t>(k) + 1);
    }
  }
  return out;
}

std::vector<Obs> to_observations(std::span<const hb::ProtocolEvent> events,
                                 ObservationMode mode) {
  for (std::size_t i = 1; i < events.size(); ++i) {
    AHB_EXPECTS(events[i - 1].at <= events[i].at);
  }
  const auto ordered = canonical_event_order(events);
  if (mode == ObservationMode::PayloadOnly) {
    std::vector<Obs> obs;
    obs.reserve(ordered.size());
    for (const auto& e : ordered) {
      Obs o = base_observation(e);
      o.any_of = payload_needles_for(e);
      obs.push_back(std::move(o));
    }
    return obs;
  }
  return IdObservationBuilder(ordered).build();
}

bool is_observable_label(const std::string& label) {
  // Every fragment a recordable event can map to. Channel-side fragments
  // (accept_*/deliver_*/lose_*/abort_wait/void_join) and p[0]'s internal
  // timeout edge stay silent; note combined labels like
  // "ch1.deliver_beat >> p1.recv_beat" classify by their process-side
  // fragment — which also makes a delivery towards a crashed process
  // (no process receiver in the broadcast) correctly silent.
  static constexpr const char* kObservable[] = {
      ".send_beat",  ".broadcast_beat", ".initial_beat", ".recv_beat",
      ".recv_first_beat", ".recv_leave", ".recv_join",   ".send_reply",
      ".join_beat",  ".send_leave",     ".nv_inactivate", ".crash",
      ".rejoin",
  };
  for (const char* needle : kObservable) {
    if (label.find(needle) != std::string::npos) return true;
  }
  return false;
}

ReplayResult replay_through_model(models::Flavor flavor,
                                  const models::BuildOptions& options,
                                  std::span<const hb::ProtocolEvent> events,
                                  const mc::GuidedLimits& limits,
                                  ObservationMode mode) {
  ReplayResult result;
  result.events = events.size();
  const auto model = models::HeartbeatModel::build(flavor, options);
  const auto obs = to_observations(events, mode);
  const auto guided =
      mc::guided_replay(model.net(), obs, is_observable_label, limits);
  result.ok = guided.ok;
  result.matched = guided.matched;
  result.expanded = guided.expanded;
  result.memo_states = guided.memo_states;
  result.memo_bytes = guided.memo_bytes;
  result.lost_ids = guided.lost_ids;
  result.diagnostic = guided.diagnostic;
  return result;
}

ReplayResult replay_cluster_trace(const hb::ClusterConfig& config,
                                  std::span<const hb::ProtocolEvent> events,
                                  models::BuildOptions::Rejoin rejoin,
                                  const mc::GuidedLimits& limits,
                                  ObservationMode mode) {
  AHB_EXPECTS(config.participants >= 1 && config.participants < 10);
  return replay_through_model(config.protocol.variant,
                              model_options_for(config, rejoin), events,
                              limits, mode);
}

}  // namespace ahb::proto
