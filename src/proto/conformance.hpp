// Trace conformance between the executable hb engines and the
// timed-automata models.
//
// A TraceRecorder captures the protocol-level event stream of a
// simulated hb::Cluster run (beats, replies, joins, leaves, crashes,
// inactivations — each with its simulation time). replay_cluster_trace
// then asks the membership question: is that timed trace a trace of the
// ta::Network model built for the same variant and timing? The answer
// comes from a guided-successor walk (mc/guided.hpp) in which the
// recorded events are the observable transitions and everything
// model-internal (channel loss, delivery bookkeeping, timeout edges) is
// free to interleave.
//
// Because both layers derive every timing law from the shared kernel in
// proto/timing.hpp, a successful replay is evidence the layers agree; a
// drift in either one shows up as a trace the other cannot reproduce
// (see the mutation canary in tests/proto_conformance_test.cpp).
//
// Recording assumptions: the cluster must run with zero network delay
// (min_delay = max_delay = 0) so that deliveries are observed at their
// send instant, and with fewer than 10 participants (event-to-label
// matching is by substring; "p1." must not be a prefix of another
// process name).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hb/cluster.hpp"
#include "mc/guided.hpp"
#include "models/options.hpp"

namespace ahb::proto {

/// Captures the protocol-event trace of one cluster execution. Install
/// before Cluster::start(); the recorder must outlive the run.
class TraceRecorder {
 public:
  explicit TraceRecorder(hb::Cluster& cluster) {
    cluster.on_protocol_event(
        [this](const hb::ProtocolEvent& e) { events_.push_back(e); });
  }

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const std::vector<hb::ProtocolEvent>& events() const { return events_; }

 private:
  std::vector<hb::ProtocolEvent> events_;
};

/// The model build options that mirror a cluster configuration: same
/// timing, participant count, scheduling fix and bound fix. `rejoin`
/// must be Graceful when the run injects rejoins, None otherwise.
models::BuildOptions model_options_for(
    const hb::ClusterConfig& config,
    models::BuildOptions::Rejoin rejoin = models::BuildOptions::Rejoin::None);

/// Translates recorded events into timed observations over the model's
/// transition labels (exposed for tests/diagnostics).
std::vector<mc::GuidedObservation> to_observations(
    std::span<const hb::ProtocolEvent> events);

/// Classifies a model transition label as observable (it corresponds to
/// a recordable protocol event) or silent (model-internal).
bool is_observable_label(const std::string& label);

struct ReplayResult {
  bool ok = false;
  std::size_t events = 0;   ///< recorded events in the trace
  std::size_t matched = 0;  ///< furthest event any model run reproduced
  std::uint64_t expanded = 0;
  std::string diagnostic;   ///< on failure: the first unmatched event
};

/// Replays a recorded trace through the model built from `flavor` and
/// `options`. The mutation canary calls this directly with perturbed
/// options; normal conformance checks go through replay_cluster_trace.
ReplayResult replay_through_model(models::Flavor flavor,
                                  const models::BuildOptions& options,
                                  std::span<const hb::ProtocolEvent> events,
                                  const mc::GuidedLimits& limits = {});

/// One-call conformance check: replays `events`, recorded from a cluster
/// running `config`, through the matching timed-automata model.
ReplayResult replay_cluster_trace(
    const hb::ClusterConfig& config, std::span<const hb::ProtocolEvent> events,
    models::BuildOptions::Rejoin rejoin = models::BuildOptions::Rejoin::None,
    const mc::GuidedLimits& limits = {});

}  // namespace ahb::proto
