// Trace conformance between the executable hb engines and the
// timed-automata models.
//
// A TraceRecorder captures the protocol-level event stream of a
// simulated hb::Cluster run (beats, replies, joins, leaves, crashes,
// inactivations — each with its simulation time and network message
// id). replay_cluster_trace then asks the membership question: is that
// timed trace a trace of the ta::Network model built for the same
// variant and timing? The answer comes from a guided-successor walk
// (mc/guided.hpp) in which the recorded events are the observable
// transitions and everything model-internal (channel loss, delivery
// bookkeeping, timeout edges) is free to interleave.
//
// Message identity is what makes the replay sound on nonzero-delay
// traces: every send and every delivery is a separate observation
// paired by the monotone id sim::Network stamped on the message, so a
// delayed delivery matches the channel edge of *its own* send (a
// delivered join beat and a delivered reply are distinct actions even
// though their payloads are identical), duplicated deliveries collapse
// onto their original message, and ids that never reach a delivery
// surface as explicit loss facts (ReplayResult::lost_ids).
//
// Because both layers derive every timing law from the shared kernel in
// proto/timing.hpp, a successful replay is evidence the layers agree; a
// drift in either one shows up as a trace the other cannot reproduce
// (see the mutation canaries in tests/proto_conformance_test.cpp).
//
// Recording assumptions: fewer than 10 participants (event-to-label
// matching is by substring; "p1." must not be a prefix of another
// process name), and network delays within the protocol's channel
// assumption (one-way delay <= tmin/2) if the replay is expected to
// succeed — out-of-spec chaos traces replay too, but the model rejects
// them, which is the point of feeding shrunk artifacts back in.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "hb/cluster.hpp"
#include "mc/guided.hpp"
#include "models/options.hpp"

namespace ahb::proto {

/// Captures the protocol-event trace of one cluster execution. Install
/// before Cluster::start(); the recorder must outlive the run.
class TraceRecorder {
 public:
  explicit TraceRecorder(hb::Cluster& cluster) {
    cluster.on_protocol_event(
        [this](const hb::ProtocolEvent& e) { events_.push_back(e); });
  }

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  const std::vector<hb::ProtocolEvent>& events() const { return events_; }

 private:
  std::vector<hb::ProtocolEvent> events_;
};

/// The model build options that mirror a cluster configuration: same
/// timing, participant count, scheduling fix and bound fix. `rejoin`
/// must be Graceful when the run injects rejoins, None otherwise.
models::BuildOptions model_options_for(
    const hb::ClusterConfig& config,
    models::BuildOptions::Rejoin rejoin = models::BuildOptions::Rejoin::None);

/// How recorded events translate into observations.
enum class ObservationMode {
  /// Send and delivery observations are paired by message id: delivery
  /// needles name the channel edge of the delivering message, duplicate
  /// deliveries are folded onto their original, stale join beats
  /// (delivered after the sender joined) map to the model's silent
  /// void_join, and the loss edges of messages the future delivers are
  /// forbidden while in flight.
  PerMessageIdentity,
  /// The pre-identity matcher, kept as a mutation canary: needles name
  /// only the payload-level process edges, so two identical-payload
  /// in-flight messages are interchangeable and duplicates are
  /// unrepresentable. Known-unsound on nonzero-delay traces.
  PayloadOnly,
};

/// Translates recorded events into timed observations over the model's
/// transition labels (exposed for tests/diagnostics). Events with equal
/// timestamps are canonically reordered first (send observations hop
/// before delivery observations of other nodes at the same instant), so
/// verdicts depend on the timed word, not on simulator queue internals.
std::vector<mc::GuidedObservation> to_observations(
    std::span<const hb::ProtocolEvent> events,
    ObservationMode mode = ObservationMode::PerMessageIdentity);

/// The canonical equal-timestamp ordering applied by to_observations
/// (exposed for the tie-pinning test): a send event moves before
/// delivery events of *other* nodes at the same instant; same-node
/// causal chains (deliver, then react) and internal events keep their
/// recorded order.
std::vector<hb::ProtocolEvent> canonical_event_order(
    std::span<const hb::ProtocolEvent> events);

/// Classifies a model transition label as observable (it corresponds to
/// a recordable protocol event) or silent (model-internal).
bool is_observable_label(const std::string& label);

struct ReplayResult {
  bool ok = false;
  std::size_t events = 0;   ///< recorded events in the trace
  std::size_t matched = 0;  ///< furthest observation any model run reproduced
  std::uint64_t expanded = 0;
  std::size_t memo_states = 0;  ///< memo set size of the guided search
  std::size_t memo_bytes = 0;   ///< memo store footprint in bytes
  /// Message ids sent but never observed delivered (explicit loss).
  std::vector<std::uint64_t> lost_ids;
  std::string diagnostic;   ///< on failure: the first unmatched event
};

/// Replays a recorded trace through the model built from `flavor` and
/// `options`. The mutation canaries call this directly with perturbed
/// options or the PayloadOnly mode; normal conformance checks go
/// through replay_cluster_trace.
ReplayResult replay_through_model(
    models::Flavor flavor, const models::BuildOptions& options,
    std::span<const hb::ProtocolEvent> events,
    const mc::GuidedLimits& limits = {},
    ObservationMode mode = ObservationMode::PerMessageIdentity);

/// One-call conformance check: replays `events`, recorded from a cluster
/// running `config`, through the matching timed-automata model.
ReplayResult replay_cluster_trace(
    const hb::ClusterConfig& config, std::span<const hb::ProtocolEvent> events,
    models::BuildOptions::Rejoin rejoin = models::BuildOptions::Rejoin::None,
    const mc::GuidedLimits& limits = {},
    ObservationMode mode = ObservationMode::PerMessageIdentity);

}  // namespace ahb::proto
