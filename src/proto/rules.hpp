// Protocol kernel, part 1: the variant taxonomy and the per-variant
// declarative rule table.
//
// `ahb_proto` is the single source of truth for the semantics of the
// accelerated heartbeat protocols (Gouda & McGuire, ICDCS'98, plus the
// revised binary variant of McGuire & Gouda 2004). Both executable
// layers — the sans-I/O engines in `src/hb` and the timed-automata
// models in `src/models` — resolve every variant-dependent branch and
// every timing constant through this library, so a protocol change made
// here propagates to both layers at once and the trace-conformance
// harness (`proto/conformance.hpp`) can prove they agree.
//
// This header is deliberately header-only and constexpr: `hb` and
// `models` consume it without a link dependency, which keeps the
// dependency graph acyclic (`ahb_proto`'s compiled part, the
// conformance recorder/replayer, links *against* those layers).
#pragma once

namespace ahb::proto {

/// The protocol variants. This enum is shared by both layers:
/// `hb::Variant` and `models::Flavor` are aliases of it.
enum class Variant {
  Binary,         ///< two processes, halving acceleration
  RevisedBinary,  ///< binary, but p[0] beats immediately at start-up
  TwoPhase,       ///< on a miss the waiting time drops straight to tmin
  Static,         ///< fixed set of n participants, broadcast beats
  Expanding,      ///< participants may join during execution
  Dynamic,        ///< participants may join and (gracefully) leave
};

constexpr const char* to_string(Variant v) {
  switch (v) {
    case Variant::Binary:
      return "binary";
    case Variant::RevisedBinary:
      return "revised-binary";
    case Variant::TwoPhase:
      return "two-phase";
    case Variant::Static:
      return "static";
    case Variant::Expanding:
      return "expanding";
    case Variant::Dynamic:
      return "dynamic";
  }
  return "unknown";
}

/// What a variant does, as data. Each flag answers one question both
/// layers used to hard-code independently.
struct VariantRules {
  /// p[0] keeps per-participant rcvd[i]/tm[i] lists and broadcasts its
  /// beat (static/expanding/dynamic); the binary flavors track a single
  /// peer over a handshake channel.
  bool multi = false;
  /// Participants start outside the group and join by beating every
  /// tmin until p[0]'s heartbeat confirms the registration. The first
  /// join beat goes out at tmin after start-up, not at time zero
  /// (Fig. 6 of the formal analysis).
  bool join_phase = false;
  /// Beats carry a join/leave flag and a participant may depart
  /// gracefully by replying with a false-flag beat.
  bool graceful_leave = false;
  /// p[0] sends its first beat immediately at start-up instead of
  /// waiting out the first tmax round (revised binary).
  bool initial_beat = false;
  /// A missed round drops the waiting time straight to tmin instead of
  /// halving it; a second consecutive miss at tmin inactivates.
  bool two_phase = false;
};

/// The rule table. Pure data: both layers branch on these flags only.
constexpr VariantRules rules_for(Variant v) {
  switch (v) {
    case Variant::Binary:
      return {};
    case Variant::RevisedBinary:
      return {.initial_beat = true};
    case Variant::TwoPhase:
      return {.two_phase = true};
    case Variant::Static:
      return {.multi = true};
    case Variant::Expanding:
      return {.multi = true, .join_phase = true};
    case Variant::Dynamic:
      return {.multi = true, .join_phase = true, .graceful_leave = true};
  }
  return {};  // unreachable for valid enumerators
}

/// Convenience predicates over the rule table.
constexpr bool variant_is_multi(Variant v) { return rules_for(v).multi; }
constexpr bool variant_joins(Variant v) { return rules_for(v).join_phase; }
constexpr bool variant_leaves(Variant v) {
  return rules_for(v).graceful_leave;
}

}  // namespace ahb::proto
