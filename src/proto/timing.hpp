// Protocol kernel, part 2: every closed-form timing law of the
// accelerated heartbeat protocols as a pure function.
//
// Each function here used to exist at least twice — once in the hb
// engines and once in the timed-automata models (and, for the verdict
// predicates, a third time in the test/bench oracles). Both layers now
// delegate to this header, so there is exactly one place where a
// timeout bound or acceleration step can be changed, and the
// conformance harness checks the layers still agree after any change.
//
// Header-only and constexpr on purpose: usable from guards/effects in
// model-building code and from hot engine paths without a link
// dependency on the compiled part of `ahb_proto`.
#pragma once

#include <cstdint>

#include "proto/rules.hpp"

namespace ahb::proto {

using Time = std::int64_t;

/// Protocol timing parameters. tmin is both the lower bound on waiting
/// times and the upper bound on the round-trip channel delay; tmax is
/// the upper bound on waiting times (the healthy-network beat period).
struct Timing {
  Time tmin = 1;
  Time tmax = 10;

  constexpr bool valid() const { return 0 < tmin && tmin <= tmax; }
};

// ---------------------------------------------------------------------------
// Acceleration law
// ---------------------------------------------------------------------------

/// Sentinel waiting time returned by `accelerate` when a two-phase miss
/// occurs with the waiting time already at tmin.
///
/// Contract: `kInactivateWait` is strictly below every valid tmin
/// (Timing::valid() requires tmin > 0), so feeding it to
/// `wait_inactivates` — the `next < tmin` inactivation test both layers
/// apply at the next round boundary — always answers true. It is a
/// *decision*, not a duration: no timer is ever armed with this value.
inline constexpr Time kInactivateWait = 0;

/// The acceleration law: the next waiting time after a missed round,
/// given the current waiting time.
///   - halving variants: current / 2 (integer division);
///   - two-phase: drop straight to tmin; a miss already *at* tmin
///     yields kInactivateWait, which forces inactivation at the next
///     `wait_inactivates` check.
constexpr Time accelerate(Time current, const Timing& t, Variant v) {
  if (!rules_for(v).two_phase) return current / 2;
  return current == t.tmin ? kInactivateWait : t.tmin;
}

/// One full round-boundary step of the waiting-time ladder: reset to
/// tmax on a received beat, accelerate on a miss.
constexpr Time next_wait(bool received, Time current, const Timing& t,
                         Variant v) {
  return received ? t.tmax : accelerate(current, t, v);
}

/// The inactivation test applied to the outcome of `next_wait`: a
/// waiting time below tmin violates the round-trip premise, so the
/// process must non-voluntarily inactivate instead of arming a timer.
constexpr bool wait_inactivates(Time next, const Timing& t) {
  return next < t.tmin;
}

// ---------------------------------------------------------------------------
// Timeout bounds (published vs Section 6.2 corrected)
// ---------------------------------------------------------------------------

/// p[i]'s inactivation deadline once participating: as published
/// 3*tmax - tmin; corrected (tightened) to 2*tmax.
constexpr Time participant_deadline(const Timing& t, bool fixed) {
  return fixed ? 2 * t.tmax : 3 * t.tmax - t.tmin;
}

/// Deadline of the join phase (expanding/dynamic): as published
/// 3*tmax - tmin; corrected to 2*tmax + tmin.
constexpr Time join_deadline(const Timing& t, bool fixed) {
  return fixed ? 2 * t.tmax + t.tmin : 3 * t.tmax - t.tmin;
}

/// The bound within which p[0] is guaranteed to self-inactivate after
/// its last received beat — the corrected R1 bound, which is what the
/// protocol actually achieves.
constexpr Time coordinator_detection_bound(const Timing& t) {
  return 2 * t.tmin > t.tmax ? 2 * t.tmax : 3 * t.tmax - t.tmin;
}

/// The detection bound R1 demands of p[0] after its peer's crash: the
/// as-published requirement is 2*tmax; the corrected requirement
/// (Section 6.2) relaxes it to 3*tmax - tmin whenever 2*tmin <= tmax.
constexpr Time r1_bound(const Timing& t, bool fixed) {
  if (!fixed) return 2 * t.tmax;
  return coordinator_detection_bound(t);
}

/// Interval between join beats while in the join phase.
constexpr Time join_beat_period(const Timing& t) { return t.tmin; }

/// Earliest safe rejoin time after a graceful leave sent at `left_at`:
/// the leave beat's delay bound must drain first, or a stale in-flight
/// leave can de-register the new incarnation (the reincarnation
/// hazard).
constexpr Time earliest_rejoin(Time left_at, const Timing& t) {
  return left_at + t.tmin + 1;
}

// ---------------------------------------------------------------------------
// Runtime-monitor slack laws (rv layer)
// ---------------------------------------------------------------------------
//
// The R1–R3 verdict predicates below answer whether a requirement holds
// at *every* execution of a timing; the runtime monitors of src/rv
// instead need per-execution deadlines that are *sound* for any fault
// sequence inside the channel assumptions yet still violable by
// out-of-spec faults. These laws give that slack in closed form.

/// Total waiting time of the acceleration ladder: the sum of round
/// waits from a fresh tmax down to the inactivation decision — the
/// worst-case time a process keeps beating after its last received
/// beat. Halving variants at (1,16): 16+8+4+2+1 = 31; two-phase:
/// tmax + tmin (or just tmax when tmin == tmax).
constexpr Time acceleration_ladder_sum(const Timing& t, Variant v) {
  Time sum = 0;
  for (Time w = t.tmax; !wait_inactivates(w, t); w = accelerate(w, t, v)) {
    sum += w;
  }
  return sum;
}

/// R1 monitor slack: once the last participant the coordinator could
/// still hear from has stopped (crashed, left, or inactivated) at
/// global time S, the coordinator must NV-inactivate by S +
/// r1_detection_slack. Budget: tmin for the stopped peer's in-flight
/// replies to drain, up to tmax until the round those replies land in
/// closes, then the full acceleration ladder of silent rounds.
constexpr Time r1_detection_slack(const Timing& t, Variant v) {
  return t.tmin + t.tmax + acceleration_ladder_sum(t, v);
}

/// R3 monitor slack: once the coordinator stops (or last beat a
/// participant) at global time S, every registered participant must
/// NV-inactivate by S + r3_detection_slack. Budget: tmin for in-flight
/// beats to drain, then the engine's own inactivation deadline —
/// participant_deadline once joined, join_deadline while joining (the
/// monitor takes the max since it does not track the join handshake).
constexpr Time r3_detection_slack(const Timing& t, Variant v, bool fixed) {
  const Time joined = participant_deadline(t, fixed);
  const Time joining =
      rules_for(v).join_phase ? join_deadline(t, fixed) : joined;
  return t.tmin + (joined > joining ? joined : joining);
}

/// R2 explanation window: an NV-inactivation is premature (a genuine
/// R2 violation) unless some fault — a channel loss/block, a crash, a
/// leave, or another process's earlier NV-inactivation — occurred
/// within this window before it. The window covers the longest
/// fault-to-inactivation latency in either direction (coordinator
/// detecting a participant, or vice versa), so cascades are explained
/// hop by hop.
constexpr Time r2_explanation_window(const Timing& t, Variant v, bool fixed) {
  return r1_detection_slack(t, v) + r3_detection_slack(t, v, fixed);
}

/// Suspicion-ladder earliest-detection slack: the coordinator counts a
/// missed round for a member at most once per round, and while it is
/// active consecutive round closes are at least tmin apart (the round
/// length never drops below tmin without forcing inactivation) — so
/// `misses` consecutive missed rounds cannot have accumulated earlier
/// than `misses * tmin` after the member's last registered beat. A
/// suspicion level reached sooner means the rounds closed faster than
/// the protocol allows (a drifting coordinator clock — the negative
/// control of rv::SuspicionMonitor).
constexpr Time suspicion_earliest_slack(const Timing& t, int misses) {
  return static_cast<Time>(misses) * t.tmin;
}

/// Suspicion-ladder detection bound: once a member stops beating at
/// global time S, the coordinator must have counted `misses` missed
/// rounds for it — or have stopped itself — by S +
/// suspicion_detection_bound. Budget: tmin for the member's in-flight
/// replies to drain, up to tmax until the round the last reply lands in
/// closes (a miss is only counted from the next close on), then one
/// close per miss, each at most tmax later. Sound for any in-spec fault
/// sequence because a silent member also drags the coordinator's
/// acceleration ladder dry: whenever the ladder inactivates the
/// coordinator first, the obligation is discharged, and that always
/// happens within this same budget.
constexpr Time suspicion_detection_bound(const Timing& t, int misses) {
  return t.tmin + (static_cast<Time>(misses) + 1) * t.tmax;
}

// ---------------------------------------------------------------------------
// Closed-form R1/R2/R3 verdict predicates
// ---------------------------------------------------------------------------

/// The closed-form model-checking verdicts for the *as-published*
/// protocols, as established by the formal analysis and reproduced
/// bit-for-bit by this repo's checker (bench_table1/2, the verdict
/// sweeps in tests/models_verdict_test.cpp).
struct ExpectedVerdicts {
  bool r1, r2, r3;
};

/// Verdicts of the published (unfixed) protocol at the given timing.
///   R1 (p[0] detects within bound):
///       halving variants: 2*tmin > tmax; two-phase: tmin == tmax.
///   R2 (no premature participant inactivation):
///       join-phase variants: 2*tmin < tmax (Fig. 13 join
///       counterexample bites once 2*tmin >= tmax); otherwise
///       tmin < tmax.
///   R3 (participants detect p[0]'s crash within bound): tmin < tmax.
constexpr ExpectedVerdicts expected_verdicts(Variant v, const Timing& t) {
  const VariantRules rules = rules_for(v);
  const bool r1 =
      rules.two_phase ? t.tmin == t.tmax : 2 * t.tmin > t.tmax;
  const bool r2 =
      rules.join_phase ? 2 * t.tmin < t.tmax : t.tmin < t.tmax;
  const bool r3 = t.tmin < t.tmax;
  return {r1, r2, r3};
}

/// Verdicts with both Section 6 fixes applied: every requirement holds
/// at every valid timing.
constexpr ExpectedVerdicts expected_verdicts_fixed(Variant, const Timing&) {
  return {true, true, true};
}

}  // namespace ahb::proto
